//! Protocol-level discrete-event simulation.
//!
//! Where the SPN abstracts the voting IDS into the analytic `Pfn`/`Pfp`,
//! this simulator *executes the protocols*: host-IDS verdicts are sampled
//! per voter, vote participants are drawn without replacement from the
//! target's actual group, colluding voters follow the paper's strategy,
//! rekey traffic is charged from the exact GDH accounting, and groups
//! split/merge as a birth–death process with the mobility-calibrated
//! rates. Agreement between this simulator and the analytic model (see
//! EXPERIMENTS.md) validates the Equation-1 reconstruction and the SPN
//! structure.
//!
//! Event classes (exponential race, rates refreshed after every event):
//! compromise (`A(mc)`), per-node IDS evaluation (`(T+U)·D(md)`), data
//! request by a compromised node (`λq·U`, leaks with probability `p1` —
//! condition C1), group partition/merge, and join/leave rekey events
//! (population-neutral, matching the SPN; see DESIGN.md §2.1). Failure is
//! declared on C1 or when any single group crosses the C2 Byzantine ratio.
//!
//! The scenario axes of the [`scenario`] crate are mirrored as additional
//! race entries using the same closed-form modulations as the SPN
//! (`crate::scenario_model`): burst phase switching, quarantine
//! release/confirmation, throttled rekey service and the stale-key leak.
//! With the baseline scenario every added rate is zero and the event
//! stream is bit-identical to the pre-scenario simulator.

use crate::config::SystemConfig;
use crate::cost::gdh_rekey_hop_bits;
use crate::scenario_model::scenario_system;
use ids::adaptive::AdaptiveController;
use ids::host::HostIds;
use ids::voting::{run_vote_with_collusion, CollusionModel, VotingConfig};
use numerics::dist::sample_exponential;
use numerics::replicate::{run_plan, OutcomeSink, Replicate, SamplingPlan};
use numerics::stats::{SurvivalAccumulator, Welford};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use scenario::{
    burst_capture_multiplier, targeted_capture_multiplier, targeted_effective_collusion,
    AttackerStrategy, ResponsePolicy, ScenarioConfig,
};

/// How a replication ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// C1: data leaked to a compromised, undetected member.
    DataLeak,
    /// C2: some group exceeded the 1/3 Byzantine ratio undetected.
    ByzantineCapture,
    /// Everyone was evicted (attrition) — not a paper failure mode, tracked
    /// separately.
    Attrition,
    /// The time horizon expired first.
    Censored,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// The system under test.
    pub system: SystemConfig,
    /// Censoring horizon (s).
    pub max_time: f64,
    /// Enable the adaptive controller (re-selects the detection shape from
    /// observed compromise pacing; oracle observations — see module docs).
    pub adaptive: bool,
    /// Adversary strategy and response policy (baseline reproduces the
    /// paper's behavior exactly).
    pub scenario: ScenarioConfig,
}

impl DesConfig {
    /// Defaults: paper system, one-year horizon, no adaptation, baseline
    /// scenario.
    pub fn new(system: SystemConfig) -> Self {
        Self {
            system,
            max_time: 3.15e7,
            adaptive: false,
            scenario: ScenarioConfig::baseline(),
        }
    }
}

/// Outcome of one replication.
#[derive(Debug, Clone)]
pub struct DesOutcome {
    /// Time of failure (or censoring).
    pub time: f64,
    /// Why the run ended.
    pub cause: FailureCause,
    /// Accumulated traffic (hop·bits).
    pub hop_bits: f64,
    /// Time-averaged cost rate (hop·bits/s).
    pub mean_cost_rate: f64,
    /// Nodes compromised by the attacker.
    pub compromises: u64,
    /// Compromised nodes caught by the voting IDS.
    pub true_evictions: u64,
    /// Healthy nodes falsely evicted.
    pub false_evictions: u64,
    /// Voting rounds executed.
    pub votes: u64,
    /// Time of the first compromise (`None` if none happened).
    pub first_compromise: Option<f64>,
    /// Time of the first true detection — the first conviction of a
    /// compromised node (`None` if none happened).
    pub first_true_detection: Option<f64>,
}

/// Aggregate statistics over replications.
#[derive(Debug, Clone)]
pub struct DesStats {
    /// Time-to-failure statistics over non-censored replications.
    pub mttsf: Welford,
    /// Cost-rate statistics over all replications of positive duration.
    pub cost_rate: Welford,
    /// C1 failures.
    pub c1_failures: u64,
    /// C2 failures.
    pub c2_failures: u64,
    /// Attrition endings.
    pub attritions: u64,
    /// Censored replications (including the zero-duration ones below).
    pub censored: u64,
    /// Replications of zero duration, counted as censored-at-zero. Their
    /// `mean_cost_rate` of `0.0` is an artifact of an empty observation
    /// window, not a measurement, so they are excluded from `cost_rate`
    /// and reported here instead of silently dragging the mean down.
    pub zero_duration: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeStatus {
    Trusted,
    Compromised,
    Evicted,
    /// Convicted good node held in quarantine (quarantine-rejoin policy).
    QuarantinedGood,
    /// Convicted compromised node held in quarantine.
    QuarantinedBad,
}

struct World {
    cfg: SystemConfig,
    status: Vec<NodeStatus>,
    groups: Vec<Vec<u32>>,
    host: HostIds,
}

impl World {
    fn new(cfg: &SystemConfig) -> Self {
        let n = cfg.node_count as usize;
        Self {
            cfg: cfg.clone(),
            status: vec![NodeStatus::Trusted; n],
            groups: vec![(0..n as u32).collect()],
            host: HostIds::new(cfg.p1_host_false_negative, cfg.p2_host_false_positive),
        }
    }

    fn count(&self, s: NodeStatus) -> u32 {
        self.status.iter().filter(|&&x| x == s).count() as u32
    }

    fn trusted(&self) -> u32 {
        self.count(NodeStatus::Trusted)
    }

    fn undetected(&self) -> u32 {
        self.count(NodeStatus::Compromised)
    }

    fn group_of(&self, node: u32) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&node))
            .expect("every live node belongs to a group")
    }

    /// C2 check on actual per-group composition.
    fn any_group_byzantine(&self) -> bool {
        self.groups.iter().any(|g| {
            let (mut t, mut u) = (0u32, 0u32);
            for &n in g {
                match self.status[n as usize] {
                    NodeStatus::Trusted => t += 1,
                    NodeStatus::Compromised => u += 1,
                    // evicted/quarantined nodes have left their group
                    _ => {}
                }
            }
            2 * u > t && (t + u) > 0
        })
    }

    /// Background traffic rate over the actual group layout (hop·bits/s):
    /// data dissemination + status + beacons. Vote and rekey traffic is
    /// charged per event.
    fn background_rate(&self) -> f64 {
        let cfg = &self.cfg;
        let mut rate = 0.0;
        for g in &self.groups {
            let live: u32 = g
                .iter()
                .filter(|&&n| self.status[n as usize] != NodeStatus::Evicted)
                .count() as u32;
            let nf = live as f64;
            rate += cfg.group_comm_rate * nf * cfg.data_packet_bits as f64 * nf;
            rate += nf * cfg.status_packet_bits as f64 * nf / cfg.status_period;
            rate += nf * cfg.beacon_bits as f64 / cfg.beacon_period;
        }
        rate
    }

    /// Remove a node from its group (no status change); returns the
    /// remaining group size.
    fn remove_from_group(&mut self, node: u32) -> u32 {
        let gi = self.group_of(node);
        self.groups[gi].retain(|&n| n != node);
        let size = self.groups[gi].len() as u32;
        if self.groups[gi].is_empty() {
            self.groups.remove(gi);
        }
        size
    }

    /// Remove an evicted node from its group.
    fn evict(&mut self, node: u32) -> f64 {
        let size = self.remove_from_group(node);
        self.status[node as usize] = NodeStatus::Evicted;
        gdh_rekey_hop_bits(&self.cfg, size.max(1))
    }

    /// Re-admit a released node into a random group (quarantine-rejoin),
    /// charging the rejoin rekey of the receiving group.
    fn rejoin<R: Rng + ?Sized>(&mut self, node: u32, rng: &mut R) -> f64 {
        if self.groups.is_empty() {
            self.groups.push(vec![node]);
            return 0.0; // a singleton group needs no rekey
        }
        let gi = rng.gen_range(0..self.groups.len());
        self.groups[gi].push(node);
        gdh_rekey_hop_bits(&self.cfg, self.groups[gi].len() as u32)
    }
}

/// Event indices of the exponential race in [`run_des`], in rate order.
/// The join/leave rekey event is the (unlisted) final slot, so it also
/// absorbs floating-point residue in [`sample_event_index`]; every
/// scenario-specific rate is zero under the baseline scenario, keeping the
/// baseline event stream bit-identical to the pre-scenario simulator.
const EVENT_COMPROMISE: usize = 0;
const EVENT_EVALUATE: usize = 1;
const EVENT_LEAK: usize = 2;
const EVENT_PARTITION: usize = 3;
const EVENT_MERGE: usize = 4;
const EVENT_BURST_ON: usize = 5;
const EVENT_BURST_OFF: usize = 6;
const EVENT_RELEASE_GOOD: usize = 7;
const EVENT_RELEASE_BAD: usize = 8;
const EVENT_CONFIRM_BAD: usize = 9;
const EVENT_REKEY_SERVE: usize = 10;
const EVENT_STALE_LEAK: usize = 11;

/// Per-replication counters threaded to every [`DesOutcome`] return site.
#[derive(Debug, Clone, Copy, Default)]
struct DesCounters {
    compromises: u64,
    true_evictions: u64,
    false_evictions: u64,
    votes: u64,
    first_compromise: Option<f64>,
    first_true_detection: Option<f64>,
}

fn finish(t: f64, cause: FailureCause, hop_bits: f64, k: &DesCounters) -> DesOutcome {
    DesOutcome {
        time: t,
        cause,
        hop_bits,
        mean_cost_rate: if t > 0.0 { hop_bits / t } else { 0.0 },
        compromises: k.compromises,
        true_evictions: k.true_evictions,
        false_evictions: k.false_evictions,
        votes: k.votes,
        first_compromise: k.first_compromise,
        first_true_detection: k.first_true_detection,
    }
}

/// Winner of an exponential race: the first slot whose cumulative rate mass
/// exceeds `pick` (the final slot absorbs floating-point residue).
fn sample_event_index(mut pick: f64, rates: &[f64]) -> usize {
    for (i, &r) in rates.iter().enumerate() {
        if pick < r {
            return i;
        }
        pick -= r;
    }
    rates.len() - 1
}

/// Run one replication.
pub fn run_des(cfg: &DesConfig, seed: u64) -> DesOutcome {
    // Stealth is a pure parameter transform, applied up front exactly as in
    // the SPN backend.
    let sys_owned = scenario_system(&cfg.system, &cfg.scenario);
    let sys = &sys_owned;
    let focus = cfg.scenario.attacker.focus();
    let burst = match cfg.scenario.attacker {
        AttackerStrategy::Burst {
            on_rate,
            off_rate,
            multiplier,
        } => Some((on_rate, off_rate, multiplier)),
        _ => None,
    };
    let quarantine = match cfg.scenario.response {
        ResponsePolicy::QuarantineRejoin {
            release_rate,
            false_release_prob,
        } => Some((release_rate, false_release_prob)),
        _ => None,
    };
    let throttle = match cfg.scenario.response {
        ResponsePolicy::RekeyThrottle { max_rate } => Some(max_rate),
        _ => None,
    };

    // detlint::allow(D003): leaf constructor — `seed` is a child_seed from the replicate grid, passed down by the executor
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new(sys);
    let mut detection = sys.detection;
    let mut controller = AdaptiveController::new(sys.attacker.exponent, detection.base_interval);
    let mut last_compromise_at = 0.0f64;

    let mut t = 0.0f64;
    let mut hop_bits = 0.0f64;
    let mut k = DesCounters::default();
    let mut burst_active = false;
    let mut pending_rekeys = 0u32;

    loop {
        let trusted = world.trusted();
        let undetected = world.undetected();
        let live = trusted + undetected;
        let qg = world.count(NodeStatus::QuarantinedGood) as f64;
        let qb = world.count(NodeStatus::QuarantinedBad) as f64;
        // Attrition requires the quarantine to be empty too: a held node may
        // still be released back into the system (matches `scenario_failed`).
        if live == 0 && qg + qb == 0.0 {
            return finish(t, FailureCause::Attrition, hop_bits, &k);
        }
        let g = world.groups.len() as f64;

        // --- event rates ---------------------------------------------------
        let r_compromise = if trusted > 0 {
            let mut r = sys.attacker.rate(trusted, undetected);
            if focus > 0.0 {
                r *= targeted_capture_multiplier(focus, trusted, undetected);
            }
            if let Some((_, _, mult)) = burst {
                r *= burst_capture_multiplier(mult, burst_active);
            }
            r
        } else {
            0.0
        };
        let r_evaluate = live as f64 * detection.rate(sys.node_count, trusted, undetected);
        let r_leak = sys.group_comm_rate * undetected as f64;
        let can_partition = world.groups.iter().any(|grp| grp.len() >= 2)
            && (world.groups.len() as u32) < sys.max_groups;
        let r_partition = if can_partition {
            sys.partition_rate_per_group * g
        } else {
            0.0
        };
        let r_merge = if world.groups.len() >= 2 {
            sys.merge_rate_per_group * (g - 1.0)
        } else {
            0.0
        };
        let (r_burst_on, r_burst_off) = match burst {
            Some((on, off, _)) => {
                if burst_active {
                    (0.0, off)
                } else {
                    (on, 0.0)
                }
            }
            None => (0.0, 0.0),
        };
        let (r_rel_good, r_rel_bad, r_conf_bad) = match quarantine {
            Some((rel, fr)) => (rel * qg, rel * fr * qb, rel * (1.0 - fr) * qb),
            None => (0.0, 0.0, 0.0),
        };
        let (r_serve, r_stale) = match throttle {
            Some(max_rate) if pending_rekeys > 0 => (
                max_rate,
                sys.p1_host_false_negative * sys.group_comm_rate * pending_rekeys as f64,
            ),
            _ => (0.0, 0.0),
        };
        // join/leave stays the last entry: it absorbs fp residue in
        // `sample_event_index` (and needs a non-empty group to charge).
        let r_joinleave = if world.groups.is_empty() {
            0.0
        } else {
            sys.join_rate * (sys.node_count - live) as f64 + sys.leave_rate * live as f64
        };
        let total = r_compromise
            + r_evaluate
            + r_leak
            + r_partition
            + r_merge
            + r_burst_on
            + r_burst_off
            + r_rel_good
            + r_rel_bad
            + r_conf_bad
            + r_serve
            + r_stale
            + r_joinleave;
        if total <= 0.0 {
            return finish(
                cfg.max_time,
                FailureCause::Censored,
                hop_bits + world.background_rate() * (cfg.max_time - t),
                &k,
            );
        }

        let dt = sample_exponential(&mut rng, total);
        let step = dt.min(cfg.max_time - t);
        hop_bits += world.background_rate() * step;
        if t + dt >= cfg.max_time {
            return finish(cfg.max_time, FailureCause::Censored, hop_bits, &k);
        }
        t += dt;

        // --- pick the event (winner of the exponential race) -----------------
        let rates = [
            r_compromise,
            r_evaluate,
            r_leak,
            r_partition,
            r_merge,
            r_burst_on,
            r_burst_off,
            r_rel_good,
            r_rel_bad,
            r_conf_bad,
            r_serve,
            r_stale,
            r_joinleave,
        ];
        match sample_event_index(rng.gen::<f64>() * total, &rates) {
            EVENT_COMPROMISE => {
                // attacker compromises a random trusted node
                let victims: Vec<u32> = (0..world.status.len() as u32)
                    .filter(|&n| world.status[n as usize] == NodeStatus::Trusted)
                    .collect();
                let &victim = victims.choose(&mut rng).expect("trusted node exists");
                world.status[victim as usize] = NodeStatus::Compromised;
                k.compromises += 1;
                if k.first_compromise.is_none() {
                    k.first_compromise = Some(t);
                }
                if cfg.adaptive {
                    let dt_c = (t - last_compromise_at).max(1e-9);
                    last_compromise_at = t;
                    let mc = ids::functions::AttackerProfile::mc(
                        world.trusted().max(1),
                        world.undetected(),
                    );
                    controller.observe(dt_c, mc);
                    detection = detection.with_interval(detection.base_interval);
                    detection.shape = controller.matching_shape();
                }
            }
            EVENT_EVALUATE => {
                // evaluate a random live node with an actual voting round
                let live_nodes: Vec<u32> = (0..world.status.len() as u32)
                    .filter(|&n| {
                        matches!(
                            world.status[n as usize],
                            NodeStatus::Trusted | NodeStatus::Compromised
                        )
                    })
                    .collect();
                let &target = live_nodes.choose(&mut rng).expect("live node exists");
                let gi = world.group_of(target);
                let peers: Vec<bool> = world.groups[gi]
                    .iter()
                    .filter(|&&n| n != target)
                    .map(|&n| world.status[n as usize] == NodeStatus::Compromised)
                    .collect();
                let vote_cfg = VotingConfig {
                    participants: sys.vote_participants,
                    host: world.host,
                };
                let target_bad = world.status[target as usize] == NodeStatus::Compromised;
                // Targeted attackers press their numeric advantage inside the
                // vote too — same effective collusion as the SPN's Pfn/Pfp.
                let collusion = if focus > 0.0 {
                    CollusionModel::Probabilistic(targeted_effective_collusion(
                        sys.collusion.malice_probability(),
                        focus,
                        trusted,
                        undetected,
                    ))
                } else {
                    sys.collusion
                };
                let o = run_vote_with_collusion(&vote_cfg, target_bad, &peers, collusion, &mut rng);
                k.votes += 1;
                // votes flood the target's group (Byzantine accountability)
                let group_live = world.groups[gi].len() as f64;
                hop_bits += o.votes as f64 * sys.vote_packet_bits as f64 * group_live;
                if o.evicted {
                    if target_bad {
                        k.true_evictions += 1;
                        if k.first_true_detection.is_none() {
                            k.first_true_detection = Some(t);
                        }
                    } else {
                        k.false_evictions += 1;
                    }
                    if quarantine.is_some() {
                        // conviction quarantines instead of evicting; the
                        // shrunken group still rekeys
                        let size = world.remove_from_group(target);
                        world.status[target as usize] = if target_bad {
                            NodeStatus::QuarantinedBad
                        } else {
                            NodeStatus::QuarantinedGood
                        };
                        hop_bits += gdh_rekey_hop_bits(sys, size.max(1));
                    } else if throttle.is_some() {
                        // conviction evicts but the rekey is queued, not
                        // charged — the old key stays live until served
                        world.remove_from_group(target);
                        world.status[target as usize] = NodeStatus::Evicted;
                        pending_rekeys += 1;
                    } else {
                        hop_bits += world.evict(target);
                    }
                }
            }
            EVENT_LEAK => {
                // a compromised node requests data; the responder leaks iff its
                // host IDS misses the requester
                hop_bits += sys.data_packet_bits as f64 * sys.mean_hops;
                if rng.gen::<f64>() < sys.p1_host_false_negative {
                    return finish(t, FailureCause::DataLeak, hop_bits, &k);
                }
            }
            EVENT_PARTITION => {
                // split a random group (≥ 2 members) in half
                let candidates: Vec<usize> = (0..world.groups.len())
                    .filter(|&i| world.groups[i].len() >= 2)
                    .collect();
                let &gi = candidates
                    .choose(&mut rng)
                    .expect("partitionable group exists");
                let mut members = std::mem::take(&mut world.groups[gi]);
                members.shuffle(&mut rng);
                let half = members.len() / 2;
                let other = members.split_off(half);
                hop_bits += gdh_rekey_hop_bits(sys, members.len() as u32)
                    + gdh_rekey_hop_bits(sys, other.len() as u32);
                world.groups[gi] = members;
                world.groups.push(other);
            }
            EVENT_MERGE => {
                // merge two random groups
                let a = rng.gen_range(0..world.groups.len());
                let mut b = rng.gen_range(0..world.groups.len() - 1);
                if b >= a {
                    b += 1;
                }
                let moved = std::mem::take(&mut world.groups[b]);
                world.groups[a].extend(moved);
                hop_bits += gdh_rekey_hop_bits(sys, world.groups[a].len() as u32);
                world.groups.remove(b);
            }
            EVENT_BURST_ON => burst_active = true,
            EVENT_BURST_OFF => burst_active = false,
            EVENT_RELEASE_GOOD => {
                // quarantine review clears a good node; it rejoins a group
                let held: Vec<u32> = (0..world.status.len() as u32)
                    .filter(|&n| world.status[n as usize] == NodeStatus::QuarantinedGood)
                    .collect();
                let &node = held.choose(&mut rng).expect("quarantined good node exists");
                world.status[node as usize] = NodeStatus::Trusted;
                hop_bits += world.rejoin(node, &mut rng);
            }
            EVENT_RELEASE_BAD => {
                // quarantine review wrongly clears a compromised node
                let held: Vec<u32> = (0..world.status.len() as u32)
                    .filter(|&n| world.status[n as usize] == NodeStatus::QuarantinedBad)
                    .collect();
                let &node = held.choose(&mut rng).expect("quarantined bad node exists");
                world.status[node as usize] = NodeStatus::Compromised;
                hop_bits += world.rejoin(node, &mut rng);
            }
            EVENT_CONFIRM_BAD => {
                // quarantine review confirms the conviction: permanent
                // eviction, no further rekey (the group already rekeyed)
                let held: Vec<u32> = (0..world.status.len() as u32)
                    .filter(|&n| world.status[n as usize] == NodeStatus::QuarantinedBad)
                    .collect();
                let &node = held.choose(&mut rng).expect("quarantined bad node exists");
                world.status[node as usize] = NodeStatus::Evicted;
            }
            EVENT_REKEY_SERVE => {
                // the throttled rekey service completes one pending rekey
                pending_rekeys -= 1;
                if !world.groups.is_empty() {
                    let gi = rng.gen_range(0..world.groups.len());
                    hop_bits += gdh_rekey_hop_bits(sys, world.groups[gi].len() as u32);
                }
            }
            EVENT_STALE_LEAK => {
                // a stale group key (rekey still pending) lets an evicted
                // compromised node read traffic — condition C1
                hop_bits += sys.data_packet_bits as f64 * sys.mean_hops;
                return finish(t, FailureCause::DataLeak, hop_bits, &k);
            }
            _ => {
                // join/leave rekey event (population-neutral; SPN-equivalent).
                // The last slot also absorbs fp residue, which can land here
                // with every member quarantined — then there is nothing to
                // rekey.
                if !world.groups.is_empty() {
                    let gi = rng.gen_range(0..world.groups.len());
                    hop_bits += gdh_rekey_hop_bits(sys, world.groups[gi].len() as u32);
                }
            }
        }

        // --- failure check ---------------------------------------------------
        if world.any_group_byzantine() {
            return finish(t, FailureCause::ByzantineCapture, hop_bits, &k);
        }
    }
}

impl Replicate for DesConfig {
    type Outcome = DesOutcome;

    fn run_one(&self, seed: u64) -> DesOutcome {
        run_des(self, seed)
    }
}

/// Streaming [`DesOutcome`] aggregation for the shared replication engine
/// (no outcome `Vec`; see [`DesStats`] for the zero-duration rule).
#[derive(Clone)]
struct DesSink {
    stats: DesStats,
    confidence: f64,
}

impl DesSink {
    fn new(confidence: f64) -> Self {
        Self {
            stats: DesStats {
                mttsf: Welford::new(),
                cost_rate: Welford::new(),
                c1_failures: 0,
                c2_failures: 0,
                attritions: 0,
                censored: 0,
                zero_duration: 0,
            },
            confidence,
        }
    }
}

impl OutcomeSink<DesOutcome> for DesSink {
    fn record(&mut self, o: DesOutcome) {
        let s = &mut self.stats;
        if o.time <= 0.0 {
            // Censored-at-zero: nothing was observed, so there is no cost
            // rate (the outcome's 0.0 is a placeholder) and no failure time.
            s.zero_duration += 1;
            s.censored += 1;
            return;
        }
        s.cost_rate.push(o.mean_cost_rate);
        match o.cause {
            FailureCause::DataLeak => {
                s.c1_failures += 1;
                s.mttsf.push(o.time);
            }
            FailureCause::ByzantineCapture => {
                s.c2_failures += 1;
                s.mttsf.push(o.time);
            }
            FailureCause::Attrition => {
                s.attritions += 1;
                s.mttsf.push(o.time);
            }
            FailureCause::Censored => s.censored += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        let (s, o) = (&mut self.stats, other.stats);
        s.mttsf.merge(&o.mttsf);
        s.cost_rate.merge(&o.cost_rate);
        s.c1_failures += o.c1_failures;
        s.c2_failures += o.c2_failures;
        s.attritions += o.attritions;
        s.censored += o.censored;
        s.zero_duration += o.zero_duration;
    }

    fn precision(&self) -> Option<f64> {
        self.stats.mttsf.relative_precision(self.confidence)
    }
}

/// [`DesStats`] plus the adaptive-sampling verdict of [`run_des_sampled`].
#[derive(Debug, Clone)]
pub struct SampledDesStats {
    /// Aggregate statistics over the replications actually run.
    pub stats: DesStats,
    /// Replications actually run (an adaptive plan chooses this at
    /// runtime).
    pub replications: u64,
    /// Whether the adaptive precision target was met (`None` for fixed
    /// plans, `Some(false)` when the budget ran out first).
    pub target_met: Option<bool>,
}

/// Run a [`SamplingPlan`] through the shared replication engine. Adaptive
/// plans stop once the relative half-width of the `confidence`-level MTTSF
/// CI meets the plan's target (or the budget runs out).
///
/// # Panics
/// Panics on an invalid plan (see [`SamplingPlan::validate`]).
pub fn run_des_sampled(
    cfg: &DesConfig,
    plan: &SamplingPlan,
    master_seed: u64,
    confidence: f64,
) -> SampledDesStats {
    let done = run_plan(cfg, plan, master_seed, || DesSink::new(confidence));
    SampledDesStats {
        stats: done.sink.stats,
        replications: done.replications,
        target_met: done.target_met,
    }
}

/// Run `n` replications in parallel with derived seeds (a fixed
/// [`SamplingPlan`] through the shared replication engine).
pub fn run_des_replications(cfg: &DesConfig, n: u64, master_seed: u64) -> DesStats {
    run_des_sampled(cfg, &SamplingPlan::Fixed(n), master_seed, 0.95).stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accelerated system so replications end quickly.
    fn hot_system(n: u32) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = 3;
        c.attacker.base_rate = 1.0 / 600.0; // one compromise per 10 min
        c.detection = c.detection.with_interval(120.0);
        c
    }

    #[test]
    fn replication_terminates_with_failure() {
        let cfg = DesConfig::new(hot_system(16));
        let o = run_des(&cfg, 42);
        assert!(matches!(
            o.cause,
            FailureCause::DataLeak | FailureCause::ByzantineCapture | FailureCause::Attrition
        ));
        assert!(o.time > 0.0);
        assert!(o.hop_bits > 0.0);
        assert!(o.mean_cost_rate > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DesConfig::new(hot_system(12));
        let a = run_des(&cfg, 7);
        let b = run_des(&cfg, 7);
        assert_eq!(a.time, b.time);
        assert_eq!(a.compromises, b.compromises);
        assert_eq!(a.hop_bits, b.hop_bits);
    }

    #[test]
    fn censoring_respected() {
        let mut cfg = DesConfig::new(hot_system(12));
        cfg.max_time = 1.0; // far below any failure time
        let o = run_des(&cfg, 3);
        assert_eq!(o.cause, FailureCause::Censored);
        assert_eq!(o.time, 1.0);
    }

    #[test]
    fn votes_and_evictions_happen() {
        let cfg = DesConfig::new(hot_system(20));
        let stats: Vec<DesOutcome> = (0..10).map(|s| run_des(&cfg, s)).collect();
        let votes: u64 = stats.iter().map(|o| o.votes).sum();
        let evictions: u64 = stats
            .iter()
            .map(|o| o.true_evictions + o.false_evictions)
            .sum();
        assert!(votes > 0);
        assert!(evictions > 0);
    }

    #[test]
    fn aggressive_detection_catches_more() {
        let slow = DesConfig::new({
            let mut c = hot_system(20);
            c.detection = c.detection.with_interval(100_000.0);
            c
        });
        let fast = DesConfig::new({
            let mut c = hot_system(20);
            c.detection = c.detection.with_interval(30.0);
            c
        });
        let s = run_des_replications(&slow, 40, 1);
        let f = run_des_replications(&fast, 40, 1);
        // nearly no detections without IDS → C1 dominates
        assert!(s.c1_failures > s.c2_failures, "slow: {s:?}");
        // aggressive IDS survives longer on average
        assert!(
            f.mttsf.mean() > s.mttsf.mean(),
            "fast {} vs slow {}",
            f.mttsf.mean(),
            s.mttsf.mean()
        );
    }

    #[test]
    fn replication_stats_aggregate() {
        let cfg = DesConfig::new(hot_system(14));
        let stats = run_des_replications(&cfg, 30, 5);
        assert_eq!(
            stats.c1_failures + stats.c2_failures + stats.attritions + stats.censored,
            30
        );
        assert!(stats.mttsf.count() > 0);
        assert!(stats.cost_rate.mean() > 0.0);
    }

    #[test]
    fn adaptive_mode_runs() {
        let mut cfg = DesConfig::new(hot_system(16));
        cfg.adaptive = true;
        let o = run_des(&cfg, 11);
        assert!(o.time > 0.0);
    }

    #[test]
    fn zero_duration_replications_are_censored_at_zero_not_averaged() {
        // A zero-length horizon observes nothing: every replication ends at
        // t = 0 with the placeholder cost rate 0.0. Averaging those zeros
        // used to silently drag the cost mean down; they must be counted
        // as censored-at-zero and excluded instead.
        let mut cfg = DesConfig::new(hot_system(12));
        cfg.max_time = 0.0;
        let stats = run_des_replications(&cfg, 6, 3);
        assert_eq!(stats.zero_duration, 6);
        assert_eq!(stats.censored, 6);
        assert_eq!(stats.cost_rate.count(), 0, "no cost observation exists");
        assert_eq!(stats.mttsf.count(), 0);
        // and a normal run reports none
        let cfg = DesConfig::new(hot_system(12));
        let stats = run_des_replications(&cfg, 6, 3);
        assert_eq!(stats.zero_duration, 0);
        assert_eq!(stats.cost_rate.count(), 6);
    }

    #[test]
    fn scenario_deterministic_per_seed() {
        let mut cfg = DesConfig::new(hot_system(12));
        cfg.scenario.attacker = AttackerStrategy::Burst {
            on_rate: 1.0 / 2_000.0,
            off_rate: 1.0 / 1_000.0,
            multiplier: 4.0,
        };
        cfg.scenario.response = ResponsePolicy::QuarantineRejoin {
            release_rate: 1.0 / 500.0,
            false_release_prob: 0.2,
        };
        let a = run_des(&cfg, 13);
        let b = run_des(&cfg, 13);
        assert_eq!(a.time, b.time);
        assert_eq!(a.hop_bits, b.hop_bits);
        assert_eq!(a.first_compromise, b.first_compromise);
    }

    #[test]
    fn first_event_times_ordered_and_recorded() {
        let cfg = DesConfig::new(hot_system(16));
        let mut saw_both = false;
        for seed in 0..20 {
            let o = run_des(&cfg, seed);
            if let Some(fc) = o.first_compromise {
                assert!(fc > 0.0 && fc <= o.time);
                if let Some(fd) = o.first_true_detection {
                    assert!(fd >= fc, "cannot detect a compromise before it happens");
                    saw_both = true;
                }
            } else {
                assert_eq!(o.first_true_detection, None);
            }
        }
        assert!(saw_both, "expected at least one detected compromise");
    }

    #[test]
    fn quarantine_runs_terminate_and_conserve_nodes() {
        let mut cfg = DesConfig::new(hot_system(14));
        cfg.scenario.response = ResponsePolicy::QuarantineRejoin {
            release_rate: 1.0 / 400.0,
            false_release_prob: 0.3,
        };
        for seed in 0..10 {
            let o = run_des(&cfg, seed);
            assert!(o.time > 0.0);
            assert!(matches!(
                o.cause,
                FailureCause::DataLeak
                    | FailureCause::ByzantineCapture
                    | FailureCause::Attrition
                    | FailureCause::Censored
            ));
        }
    }

    #[test]
    fn throttle_starves_rekeys_and_can_leak_via_stale_keys() {
        // An almost-stalled rekey service leaves convicted attackers holding
        // live keys; some replications must end in C1 via the stale-key path,
        // and survival must be no better than prompt eviction.
        let mut slow = DesConfig::new(hot_system(16));
        slow.scenario.response = ResponsePolicy::RekeyThrottle {
            max_rate: 1.0 / 1.0e7,
        };
        let prompt = DesConfig::new(hot_system(16));
        let s = run_des_replications(&slow, 60, 2);
        let p = run_des_replications(&prompt, 60, 2);
        assert!(
            s.mttsf.mean() < p.mttsf.mean(),
            "stale keys should hurt: throttled {} vs evict {}",
            s.mttsf.mean(),
            p.mttsf.mean()
        );
    }

    #[test]
    fn burst_and_targeted_attackers_shorten_survival() {
        let base = DesConfig::new(hot_system(16));
        let mut burst = DesConfig::new(hot_system(16));
        burst.scenario.attacker = AttackerStrategy::Burst {
            on_rate: 1.0 / 1_000.0,
            off_rate: 1.0 / 2_000.0,
            multiplier: 8.0,
        };
        let b0 = run_des_replications(&base, 60, 4);
        let bb = run_des_replications(&burst, 60, 4);
        assert!(
            bb.mttsf.mean() < b0.mttsf.mean(),
            "burst {} vs base {}",
            bb.mttsf.mean(),
            b0.mttsf.mean()
        );
        // Targeted focus multiplies capture by 1 + focus·U/live, so it only
        // bites once undetected nodes accumulate — use a C2-dominated system
        // (rare leaks, slow detection) where that accumulation is the game.
        let mut c2sys = hot_system(16);
        c2sys.group_comm_rate = 1e-6;
        c2sys.detection = c2sys.detection.with_interval(2_000.0);
        let c2base = DesConfig::new(c2sys.clone());
        let mut c2targeted = DesConfig::new(c2sys);
        c2targeted.scenario.attacker = AttackerStrategy::Targeted { focus: 1.0 };
        let t0 = run_des_replications(&c2base, 60, 4);
        let tt = run_des_replications(&c2targeted, 60, 4);
        assert!(
            tt.mttsf.mean() < t0.mttsf.mean(),
            "targeted {} vs base {}",
            tt.mttsf.mean(),
            t0.mttsf.mean()
        );
    }

    #[test]
    fn baseline_scenario_is_bit_identical_to_default_config() {
        // The scenario race entries are all zero-rate under the baseline
        // scenario, so the event stream (and every outcome field) must be
        // unchanged from a config that never mentions scenarios.
        let plain = DesConfig::new(hot_system(12));
        let mut explicit = DesConfig::new(hot_system(12));
        explicit.scenario = ScenarioConfig::baseline();
        for seed in 0..8 {
            let a = run_des(&plain, seed);
            let b = run_des(&explicit, seed);
            assert_eq!(a.time, b.time);
            assert_eq!(a.hop_bits, b.hop_bits);
            assert_eq!(a.votes, b.votes);
        }
    }

    #[test]
    fn adaptive_sampling_meets_mttsf_target_and_matches_fixed_prefix() {
        let cfg = DesConfig::new(hot_system(12));
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.35,
            min: 16,
            max: 400,
            batch: 16,
        };
        let out = run_des_sampled(&cfg, &plan, 7, 0.95);
        assert!(out.replications <= 400);
        if out.target_met == Some(true) {
            let ci = out.stats.mttsf.confidence_interval(0.95);
            assert!(ci.half_width / ci.mean.abs() <= 0.35, "{ci:?}");
        }
        // the adaptive run is bit-identical to the fixed plan of the same size
        let fixed = run_des_replications(&cfg, out.replications, 7);
        assert_eq!(fixed.mttsf, out.stats.mttsf);
        assert_eq!(fixed.cost_rate, out.stats.cost_rate);
        assert_eq!(fixed.c1_failures, out.stats.c1_failures);
    }
}

/// Empirical survival function from replication outcomes: for each horizon
/// `t`, the fraction of replications still failure-free at `t` — a
/// simplified Kaplan–Meier suited to a common censoring horizon.
///
/// Horizons past the earliest censoring time are `NaN` ("not estimable"):
/// there the at-risk set would consist only of replications that failed,
/// so the raw proportion would be severely failure-biased rather than
/// merely noisy (the engine-level estimator applies the same rule).
///
/// The paper's §2.1 states the security requirement as surviving "past the
/// minimum mission time" — a survival-probability statement that the MTTSF
/// point metric only summarizes; this estimator answers it directly.
///
/// # Panics
/// Panics if `outcomes` is empty.
pub fn survival_curve(outcomes: &[DesOutcome], horizons: &[f64]) -> Vec<f64> {
    assert!(!outcomes.is_empty(), "survival curve needs outcomes");
    let events: Vec<(f64, bool)> = outcomes
        .iter()
        .map(|o| (o.time, o.cause == FailureCause::Censored))
        .collect();
    horizons
        .iter()
        .map(|&t| {
            if events.iter().any(|&(time, censored)| censored && time < t) {
                return f64::NAN;
            }
            let (surviving, at_risk) = numerics::stats::at_risk_surviving(&events, t);
            if at_risk == 0 {
                f64::NAN
            } else {
                surviving as f64 / at_risk as f64
            }
        })
        .collect()
}

/// Streaming single-horizon survival sink for
/// [`mission_success_probability`].
#[derive(Clone)]
struct MissionSink(SurvivalAccumulator);

impl OutcomeSink<DesOutcome> for MissionSink {
    fn record(&mut self, o: DesOutcome) {
        self.0.push(o.time, o.cause == FailureCause::Censored);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(&other.0);
    }

    fn precision(&self) -> Option<f64> {
        None // fixed-count runs only; no adaptive stopping metric
    }
}

/// Probability of completing a mission of the given duration without a
/// security failure, estimated from `n` fresh replications (streamed
/// through the shared replication engine).
pub fn mission_success_probability(
    cfg: &DesConfig,
    mission_time: f64,
    n: u64,
    master_seed: u64,
) -> f64 {
    let mut c = cfg.clone();
    // censor right after the mission: later behaviour is irrelevant
    c.max_time = c.max_time.min(mission_time * 1.001);
    let done = run_plan(&c, &SamplingPlan::Fixed(n), master_seed, || {
        MissionSink(SurvivalAccumulator::new(&[mission_time]))
    });
    let acc = done.sink.0;
    let (surviving, at_risk) = acc.counts(0);
    if !acc.estimable(0) || at_risk == 0 {
        f64::NAN
    } else {
        surviving as f64 / at_risk as f64
    }
}

#[cfg(test)]
mod survival_tests {
    use super::*;

    fn hot(n: u32) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = 3;
        c.attacker.base_rate = 1.0 / 600.0;
        c
    }

    #[test]
    fn survival_curve_monotone_from_one_to_zero() {
        let cfg = DesConfig::new(hot(16));
        let outcomes: Vec<DesOutcome> = (0..200).map(|s| run_des(&cfg, s)).collect();
        let horizons: Vec<f64> = (0..12).map(|i| i as f64 * 20_000.0).collect();
        let s = survival_curve(&outcomes, &horizons);
        assert!((s[0] - 1.0).abs() < 1e-12, "everyone survives t = 0");
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "survival must not increase: {s:?}");
        }
        assert!(
            *s.last().unwrap() < 0.5,
            "long horizons should kill most runs: {s:?}"
        );
    }

    #[test]
    fn censored_runs_do_not_bias_tail() {
        // outcomes censored at 10 must not count as failures at t = 20
        let survivor = DesOutcome {
            time: 10.0,
            cause: FailureCause::Censored,
            hop_bits: 0.0,
            mean_cost_rate: 0.0,
            compromises: 0,
            true_evictions: 0,
            false_evictions: 0,
            votes: 0,
            first_compromise: None,
            first_true_detection: None,
        };
        let failure = DesOutcome {
            time: 5.0,
            cause: FailureCause::DataLeak,
            ..survivor.clone()
        };
        let s = survival_curve(&[survivor, failure], &[2.0, 7.0, 20.0]);
        assert_eq!(s[0], 1.0); // both alive at t=2
        assert_eq!(s[1], 0.5); // failure dead at 7, censored alive
                               // past the censoring time only the failed run would remain at
                               // risk — a raw 0.0 would be failure-biased, so: not estimable
        assert!(s[2].is_nan());
    }

    #[test]
    fn mission_success_probability_decreasing_in_duration() {
        let cfg = DesConfig::new(hot(14));
        let p_short = mission_success_probability(&cfg, 5_000.0, 300, 9);
        let p_long = mission_success_probability(&cfg, 200_000.0, 300, 9);
        assert!(p_short > p_long, "{p_short} vs {p_long}");
        assert!((0.0..=1.0).contains(&p_short));
        assert!((0.0..=1.0).contains(&p_long));
    }
}
