//! Parameter sweeps: the machinery behind Figures 2–5.
//!
//! Each sweep evaluates the exact model over a grid of base detection
//! intervals (the paper's x-axis), optionally crossed with the number of
//! vote participants `m` (Figures 2–3) or the detection shape
//! (Figures 4–5). All of these knobs are rate-only, so every sweep shares
//! one [`ExactTemplate`]: the state space is explored once and each grid
//! point re-weights the cached graph (explore once, solve many). Grid
//! points are independent and evaluate in parallel under rayon.

use crate::config::SystemConfig;
use crate::metrics::{Evaluation, ExactTemplate};
use ids::functions::RateShape;
use rayon::prelude::*;
use spn::error::SpnError;

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Base detection interval (s).
    pub t_ids: f64,
    /// Full evaluation at this point.
    pub evaluation: Evaluation,
}

/// A labelled series (one curve of a figure).
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// Legend label (e.g. `m=5` or `linear detection`).
    pub label: String,
    /// Points in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// The interval maximizing MTTSF, or `None` for an empty series or one
    /// whose MTTSF values are all NaN.
    pub fn optimal_tids_for_mttsf(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| !p.evaluation.mttsf_seconds.is_nan())
            .max_by(|a, b| {
                a.evaluation
                    .mttsf_seconds
                    .total_cmp(&b.evaluation.mttsf_seconds)
            })
            .map(|p| p.t_ids)
    }

    /// The interval minimizing Ĉtotal, or `None` for an empty series or one
    /// whose cost values are all NaN.
    pub fn optimal_tids_for_cost(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| !p.evaluation.c_total_hop_bits_per_sec.is_nan())
            .min_by(|a, b| {
                a.evaluation
                    .c_total_hop_bits_per_sec
                    .total_cmp(&b.evaluation.c_total_hop_bits_per_sec)
            })
            .map(|p| p.t_ids)
    }

    /// `(t_ids, mttsf)` pairs — the response surface consumed by the
    /// adaptive controller.
    pub fn mttsf_surface(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.t_ids, p.evaluation.mttsf_seconds))
            .collect()
    }

    /// `(t_ids, c_total)` pairs.
    pub fn cost_surface(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.t_ids, p.evaluation.c_total_hop_bits_per_sec))
            .collect()
    }
}

/// Evaluate one configuration across a TIDS grid, re-using a caller's
/// explored template (in parallel).
///
/// # Errors
/// Returns the first evaluation error.
pub fn sweep_tids_with_template(
    template: &ExactTemplate,
    cfg: &SystemConfig,
    grid: &[f64],
    label: impl Into<String>,
) -> Result<SweepSeries, SpnError> {
    let points: Result<Vec<SweepPoint>, SpnError> = grid
        .par_iter()
        .map(|&t| {
            let e = template.evaluate(&cfg.with_tids(t))?;
            Ok(SweepPoint {
                t_ids: t,
                evaluation: e,
            })
        })
        .collect();
    Ok(SweepSeries {
        label: label.into(),
        points: points?,
    })
}

/// Evaluate one configuration across a TIDS grid (in parallel), exploring
/// the state space once for the whole grid.
///
/// # Errors
/// Returns the first evaluation error.
pub fn sweep_tids(
    cfg: &SystemConfig,
    grid: &[f64],
    label: impl Into<String>,
) -> Result<SweepSeries, SpnError> {
    let template = ExactTemplate::new(cfg)?;
    sweep_tids_with_template(&template, cfg, grid, label)
}

/// Figure 2/3 sweep: one series per vote-participant count. The whole
/// `m × TIDS` product is rate-only, so all series share one exploration.
///
/// # Errors
/// Returns the first evaluation error.
pub fn sweep_tids_by_m(
    cfg: &SystemConfig,
    grid: &[f64],
    ms: &[u32],
) -> Result<Vec<SweepSeries>, SpnError> {
    let template = ExactTemplate::new(cfg)?;
    ms.iter()
        .map(|&m| {
            sweep_tids_with_template(
                &template,
                &cfg.with_vote_participants(m),
                grid,
                format!("m={m}"),
            )
        })
        .collect()
}

/// Figure 4/5 sweep: one series per detection shape, sharing one
/// exploration.
///
/// # Errors
/// Returns the first evaluation error.
pub fn sweep_tids_by_detection_shape(
    cfg: &SystemConfig,
    grid: &[f64],
) -> Result<Vec<SweepSeries>, SpnError> {
    let template = ExactTemplate::new(cfg)?;
    RateShape::all()
        .iter()
        .map(|&shape| {
            sweep_tids_with_template(
                &template,
                &cfg.with_detection_shape(shape),
                grid,
                format!("{} detection", shape.name()),
            )
        })
        .collect()
}

/// Convenience: the MTTSF-optimal interval for a configuration over the
/// paper grid (`None` only for an empty grid).
///
/// # Errors
/// Propagates evaluation failures.
pub fn optimal_tids_for_mttsf(cfg: &SystemConfig) -> Result<Option<f64>, SpnError> {
    Ok(sweep_tids(cfg, SystemConfig::paper_tids_grid(), "optimal")?.optimal_tids_for_mttsf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;

    fn small() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = 12;
        c.vote_participants = 3;
        c
    }

    const GRID: [f64; 5] = [5.0, 30.0, 120.0, 480.0, 1200.0];

    #[test]
    fn sweep_evaluates_every_point() {
        let s = sweep_tids(&small(), &GRID, "test").unwrap();
        assert_eq!(s.points.len(), GRID.len());
        for (p, &t) in s.points.iter().zip(&GRID) {
            assert_eq!(p.t_ids, t);
            assert!(p.evaluation.mttsf_seconds > 0.0);
        }
    }

    #[test]
    fn sweep_matches_per_point_evaluation() {
        // explore-once-solve-many must agree with fresh per-point solves
        let cfg = small();
        let s = sweep_tids(&cfg, &GRID, "test").unwrap();
        for p in &s.points {
            let direct = evaluate(&cfg.with_tids(p.t_ids)).unwrap();
            let rel =
                (p.evaluation.mttsf_seconds - direct.mttsf_seconds).abs() / direct.mttsf_seconds;
            assert!(rel < 1e-9, "TIDS {}: {rel}", p.t_ids);
        }
    }

    #[test]
    fn mttsf_has_interior_optimum_shape() {
        // The paper's core claim: MTTSF rises then falls in TIDS. With a
        // small system the optimum may sit at an edge of a coarse grid, so
        // use a wide grid and check non-monotonicity.
        let s = sweep_tids(&small(), &[1.0, 60.0, 5_000.0, 100_000.0], "test").unwrap();
        let v: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.evaluation.mttsf_seconds)
            .collect();
        let opt = s.optimal_tids_for_mttsf().expect("non-empty series");
        // the extremes are both worse than the optimum
        let at_opt = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!(at_opt > v[0], "short-TIDS end should be sub-optimal");
        assert!(
            at_opt > *v.last().unwrap(),
            "long-TIDS end should be sub-optimal"
        );
        assert!(opt > 1.0 && opt < 100_000.0);
    }

    #[test]
    fn full_sweep_explores_and_builds_pattern_exactly_once() {
        // The acceptance check for the rebuild-free solve path: a
        // fig2-sized rate-only product (m × TIDS, plus a survival grid)
        // performs exactly one state-space exploration and one CSR pattern
        // build in total — every point re-weights and refreshes in place.
        let cfg = small();
        let template = ExactTemplate::new(&cfg).unwrap();
        for &m in &[3u32, 5, 7, 9] {
            let series = sweep_tids_with_template(
                &template,
                &cfg.with_vote_participants(m),
                &GRID,
                format!("m={m}"),
            )
            .unwrap();
            assert_eq!(series.points.len(), GRID.len());
        }
        template
            .evaluate_with_survival(&cfg, &[0.0, 1.0e4])
            .unwrap();
        let stats = template.stats();
        assert_eq!(stats.explorations, 1, "sweep must not re-explore");
        assert_eq!(stats.pattern_builds, 1, "sweep must not rebuild the CSR");
    }

    #[test]
    fn empty_series_has_no_optimum() {
        let s = SweepSeries {
            label: "empty".into(),
            points: Vec::new(),
        };
        assert_eq!(s.optimal_tids_for_mttsf(), None);
        assert_eq!(s.optimal_tids_for_cost(), None);
    }

    #[test]
    fn series_by_m_are_labelled() {
        let all = sweep_tids_by_m(&small(), &[30.0, 120.0], &[3, 5]).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].label, "m=3");
        assert_eq!(all[1].label, "m=5");
    }

    #[test]
    fn series_by_shape_cover_all_three() {
        let all = sweep_tids_by_detection_shape(&small(), &[60.0]).unwrap();
        let labels: Vec<&str> = all.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "logarithmic detection",
                "linear detection",
                "polynomial detection"
            ]
        );
    }

    #[test]
    fn surfaces_expose_points() {
        let s = sweep_tids(&small(), &[30.0, 120.0], "test").unwrap();
        let m = s.mttsf_surface();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, 30.0);
        let c = s.cost_surface();
        assert!(c.iter().all(|&(_, v)| v > 0.0));
    }
}
