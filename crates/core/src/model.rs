//! Construction of the paper's Figure-1 SPN.
//!
//! Marking layout (places): `Tm` trusted members, `UCm` compromised but
//! undetected, `DCm` detected (evicted), `GF` data-leak failure flag, `NG`
//! number of groups. `Tm`/`UCm`/`DCm` hold *system-wide* counts; per-group
//! quantities divide by `mark(NG)` (DESIGN.md §2.1).
//!
//! | transition | effect | rate |
//! |---|---|---|
//! | `T_CP`  | `Tm → UCm` | `A(mc)`, `mc = (T+U)/T` |
//! | `T_IDS` | `UCm → DCm` | `U · D(md) · (1 − Pfn)` |
//! | `T_FA`  | `Tm → DCm` | `T · D(md) · Pfp` |
//! | `T_DRQ` | token into `GF` | `p1 · λq · U` |
//! | `T_PAR` | `NG += 1` | `ν_p · NG` |
//! | `T_MER` | `NG −= 1` | `ν_m · (NG − 1)` |
//! | `T_RK`  | none (cost-only) | join/leave rekey event rate |
//!
//! Every transition is disabled once a failure condition holds (the global
//! absorbing predicate): **C1** `mark(GF) > 0` (data leaked to a
//! compromised member) or **C2** `U/(T+U) > 1/3` (Byzantine capture),
//! checked exactly as `2U > T` in integers.

use crate::config::{ClusterTopology, SystemConfig};
use ids::voting::{p_false_negative_with_collusion, p_false_positive_with_collusion};
use numerics::UnionFind;
use spn::model::{Marking, PlaceId, Spn, SpnBuilder, TransitionDef};
use spn::reach::MarkingCanonicalizer;
use std::collections::HashMap;
use std::sync::Mutex;

/// Place handles of the constructed net.
#[derive(Debug, Clone, Copy)]
pub struct Places {
    /// Trusted members (system-wide).
    pub tm: PlaceId,
    /// Compromised, undetected members.
    pub ucm: PlaceId,
    /// Detected (evicted) members.
    pub dcm: PlaceId,
    /// Data-leak failure flag.
    pub gf: PlaceId,
    /// Number of groups.
    pub ng: PlaceId,
}

/// The model: net plus place handles and the configuration it was built
/// from.
pub struct GcsIdsModel {
    /// The stochastic Petri net.
    pub net: Spn,
    /// Place handles.
    pub places: Places,
    /// Configuration snapshot.
    pub config: SystemConfig,
}

/// Population snapshot extracted from a marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Population {
    /// Trusted members `T`.
    pub trusted: u32,
    /// Compromised undetected `U`.
    pub undetected: u32,
    /// Number of groups `g`.
    pub groups: u32,
}

impl Population {
    /// Live members `T + U`.
    pub fn live(&self) -> u32 {
        self.trusted + self.undetected
    }

    /// Per-group live population (at least 1 when any member lives).
    pub fn per_group_live(&self) -> u32 {
        if self.live() == 0 {
            0
        } else {
            (self.live() as f64 / self.groups as f64).round().max(1.0) as u32
        }
    }

    /// Per-group (good, bad) split for a **bad** target's group: the target
    /// itself is bad, so the bad count is at least 1.
    pub fn per_group_for_bad_target(&self) -> (u32, u32) {
        let n_g = self.per_group_live();
        let bad = ((self.undetected as f64 / self.groups as f64).round() as u32).clamp(1, n_g);
        (n_g - bad, bad)
    }

    /// Per-group (good, bad) split for a **good** target's group: the
    /// target itself is good, so the good count is at least 1.
    pub fn per_group_for_good_target(&self) -> (u32, u32) {
        let n_g = self.per_group_live();
        let good = ((self.trusted as f64 / self.groups as f64).round() as u32).clamp(1, n_g);
        (good, n_g - good)
    }
}

/// Extract the population from a marking.
pub fn population(places: &Places, m: &Marking) -> Population {
    Population {
        trusted: m.tokens(places.tm),
        undetected: m.tokens(places.ucm),
        groups: m.tokens(places.ng).max(1),
    }
}

/// The C2 Byzantine condition `U/(T+U) > 1/3`, evaluated exactly.
pub fn c2_holds(trusted: u32, undetected: u32) -> bool {
    2 * undetected > trusted
}

/// Voting false-negative probability `Pfn` in the given population state.
pub fn pfn_for(cfg: &SystemConfig, pop: &Population) -> f64 {
    if pop.undetected == 0 {
        return 0.0;
    }
    let (good, bad) = pop.per_group_for_bad_target();
    p_false_negative_with_collusion(
        good,
        bad,
        cfg.vote_participants,
        cfg.p1_host_false_negative,
        cfg.collusion,
    )
}

/// Voting false-positive probability `Pfp` in the given population state.
pub fn pfp_for(cfg: &SystemConfig, pop: &Population) -> f64 {
    if pop.trusted == 0 {
        return 0.0;
    }
    let (good, bad) = pop.per_group_for_good_target();
    p_false_positive_with_collusion(
        good,
        bad,
        cfg.vote_participants,
        cfg.p2_host_false_positive,
        cfg.collusion,
    )
}

/// The local failure predicate of one sub-system block: C1 (`GF` token),
/// C2 (Byzantine capture), or total attrition. For the flat model this is
/// exactly the global absorbing condition; for a clustered net it is one
/// cluster's own failure.
pub fn cluster_failed(places: &Places, m: &Marking) -> bool {
    let t = m.tokens(places.tm);
    let u = m.tokens(places.ucm);
    m.tokens(places.gf) > 0 || c2_holds(t, u) || t + u == 0
}

/// Add one GCS/IDS sub-system (5 places, 7 transitions) to `b`, with
/// `suffix` appended to every place/transition name (empty for the flat
/// model). When `freeze_on_local_failure` is set, every transition of the
/// block is guarded off once [`cluster_failed`] holds on the block's own
/// places — a failed cluster stops evolving (and accruing cost) while the
/// rest of a clustered system keeps running.
fn add_subsystem(
    b: &mut SpnBuilder,
    cfg: &SystemConfig,
    suffix: &str,
    freeze_on_local_failure: bool,
) -> Places {
    let tm = b.add_place(format!("Tm{suffix}"), cfg.node_count);
    let ucm = b.add_place(format!("UCm{suffix}"), 0);
    let dcm = b.add_place(format!("DCm{suffix}"), 0);
    let gf = b.add_place(format!("GF{suffix}"), 0);
    let ng = b.add_place(format!("NG{suffix}"), 1);
    let places = Places {
        tm,
        ucm,
        dcm,
        gf,
        ng,
    };

    // `Places` is `Copy`, so this tiny predicate can be captured by every
    // guard below. With `freeze_on_local_failure` unset it never fires and
    // the guards are skipped entirely, leaving the flat model untouched.
    let frozen = move |m: &Marking| cluster_failed(&places, m);
    let guarded = |def: TransitionDef| -> TransitionDef {
        if freeze_on_local_failure {
            def.guard(move |m| !frozen(m))
        } else {
            def
        }
    };

    // T_CP: a trusted node is compromised at the attacker rate A(mc).
    {
        let attacker = cfg.attacker;
        b.add_transition(guarded(
            TransitionDef::timed(format!("T_CP{suffix}"), move |m| {
                attacker.rate(m.tokens(tm), m.tokens(ucm))
            })
            .input(tm, 1)
            .output(ucm, 1),
        ));
    }

    // T_IDS: voting IDS catches an undetected compromised node. The voting
    // error probabilities depend only on the target group's (good, bad)
    // split, which collapses the many (T, U, NG) markings onto a handful of
    // pairs — memoize them so repeated rate evaluations (exploration,
    // re-weighting, simulation) pay the log-space voting math once per
    // pair.
    {
        let cfg_c = cfg.clone();
        let n_init = cfg.node_count;
        let cache: Mutex<HashMap<(u32, u32), f64>> = Mutex::new(HashMap::new());
        b.add_transition(guarded(
            TransitionDef::timed(format!("T_IDS{suffix}"), move |m| {
                let pop = population(&places, m);
                if pop.undetected == 0 {
                    return 0.0;
                }
                let d = cfg_c.detection.rate(n_init, pop.trusted, pop.undetected);
                let (good, bad) = pop.per_group_for_bad_target();
                let pfn = *cache
                    .lock()
                    .expect("pfn cache poisoned")
                    .entry((good, bad))
                    .or_insert_with(|| pfn_for(&cfg_c, &pop));
                pop.undetected as f64 * d * (1.0 - pfn)
            })
            .input(ucm, 1)
            .output(dcm, 1),
        ));
    }

    // T_FA: voting IDS falsely evicts a trusted node (same memoization).
    {
        let cfg_c = cfg.clone();
        let n_init = cfg.node_count;
        let cache: Mutex<HashMap<(u32, u32), f64>> = Mutex::new(HashMap::new());
        b.add_transition(guarded(
            TransitionDef::timed(format!("T_FA{suffix}"), move |m| {
                let pop = population(&places, m);
                if pop.trusted == 0 {
                    return 0.0;
                }
                let d = cfg_c.detection.rate(n_init, pop.trusted, pop.undetected);
                let (good, bad) = pop.per_group_for_good_target();
                let pfp = *cache
                    .lock()
                    .expect("pfp cache poisoned")
                    .entry((good, bad))
                    .or_insert_with(|| pfp_for(&cfg_c, &pop));
                pop.trusted as f64 * d * pfp
            })
            .input(tm, 1)
            .output(dcm, 1),
        ));
    }

    // T_DRQ: an undetected compromised member obtains data (C1). The
    // responding member replies only if its host IDS misses the requester
    // (probability p1).
    {
        let p1 = cfg.p1_host_false_negative;
        let lambda_q = cfg.group_comm_rate;
        b.add_transition(guarded(
            TransitionDef::timed(format!("T_DRQ{suffix}"), move |m| {
                p1 * lambda_q * m.tokens(ucm) as f64
            })
            .input(ucm, 1)
            .output(ucm, 1)
            .output(gf, 1),
        ));
    }

    // T_PAR / T_MER: birth–death on the group count, rates calibrated from
    // mobility simulation. Partition requires enough members for one more
    // group.
    {
        let nu_p = cfg.partition_rate_per_group;
        let max_groups = cfg.max_groups;
        let par_ok = move |m: &Marking| {
            let g = m.tokens(ng);
            g < max_groups && m.tokens(tm) + m.tokens(ucm) > g
        };
        b.add_transition(
            TransitionDef::timed(format!("T_PAR{suffix}"), move |m| {
                nu_p * m.tokens(ng) as f64
            })
            .output(ng, 1)
            .guard(move |m| par_ok(m) && !(freeze_on_local_failure && frozen(m))),
        );
        let nu_m = cfg.merge_rate_per_group;
        b.add_transition(
            TransitionDef::timed(format!("T_MER{suffix}"), move |m| {
                nu_m * (m.tokens(ng).saturating_sub(1)) as f64
            })
            .input(ng, 1)
            .guard(move |m| m.tokens(ng) >= 2 && !(freeze_on_local_failure && frozen(m))),
        );
    }

    // T_RK: join/leave rekeying. State-preserving (cost-only self loop);
    // eviction and partition/merge rekeys are charged as impulse rewards on
    // their own transitions.
    {
        let lambda = cfg.join_rate;
        let mu = cfg.leave_rate;
        let n_init = cfg.node_count;
        b.add_transition(guarded(TransitionDef::timed(
            format!("T_RK{suffix}"),
            move |m| {
                let live = m.tokens(tm) + m.tokens(ucm);
                lambda * (n_init - live.min(n_init)) as f64 + mu * live as f64
            },
        )));
    }

    places
}

/// Build the SPN for a configuration.
///
/// # Panics
/// Panics if the configuration fails [`SystemConfig::validate`] — call it
/// first for a recoverable error.
pub fn build_model(cfg: &SystemConfig) -> GcsIdsModel {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
    let mut b = SpnBuilder::new();
    let places = add_subsystem(&mut b, cfg, "", false);

    // Global absorbing predicate: C1 or C2 (or total attrition).
    b.absorbing_when(move |m| cluster_failed(&places, m));

    let net = b
        .build()
        .expect("model construction is internally consistent");
    GcsIdsModel {
        net,
        places,
        config: cfg.clone(),
    }
}

/// A clustered deployment: `topology.clusters` structurally identical
/// copies of the per-cluster sub-system in one flat net, each frozen on its
/// own failure, with the system absorbing once `topology.failure_threshold`
/// clusters have failed.
///
/// Clusters share no places and no transitions, so before system absorption
/// they evolve as independent copies of the single-cluster chain — which is
/// what makes both the symmetry lumping (clusters are interchangeable
/// members) and the hierarchical order-statistic composition in
/// `gcsids::metrics` exact.
pub struct ClusteredModel {
    /// The flat stochastic Petri net over all clusters.
    pub net: Spn,
    /// Place handles per cluster, index = cluster id.
    pub cluster_places: Vec<Places>,
    /// Per-cluster configuration snapshot (`node_count` is the cluster
    /// size; the deployment has `clusters × node_count` nodes).
    pub config: SystemConfig,
    /// Cluster count and failure threshold.
    pub topology: ClusterTopology,
}

impl ClusteredModel {
    /// Number of clusters whose local failure predicate holds in `m`.
    pub fn failed_clusters(&self, m: &Marking) -> u32 {
        self.cluster_places
            .iter()
            .filter(|p| cluster_failed(p, m))
            .count() as u32
    }
}

/// Build the flat clustered SPN for `topology` copies of `cfg`.
///
/// # Panics
/// Panics if either the per-cluster configuration or the topology fails
/// validation — call `validate()` on both first for a recoverable error.
pub fn build_clustered_model(cfg: &SystemConfig, topology: &ClusterTopology) -> ClusteredModel {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
    topology
        .validate()
        .unwrap_or_else(|e| panic!("invalid topology: {e}"));
    let mut b = SpnBuilder::new();
    let cluster_places: Vec<Places> = (0..topology.clusters)
        .map(|i| add_subsystem(&mut b, cfg, &format!("#{i}"), true))
        .collect();

    let blocks = cluster_places.clone();
    let threshold = topology.failure_threshold as usize;
    b.absorbing_when(move |m| blocks.iter().filter(|p| cluster_failed(p, m)).count() >= threshold);

    let net = b
        .build()
        .expect("clustered model construction is internally consistent");
    ClusteredModel {
        net,
        cluster_places,
        config: cfg.clone(),
        topology: *topology,
    }
}

/// The member-permutation symmetry of a clustered model, as exploration
/// orbits: clusters with identical structural signatures (same place-block
/// shape and initial tokens — always all of them, since the net is built
/// from one per-cluster config) are interchangeable.
///
/// Orbits are computed with a disjoint-set union over cluster signatures,
/// so the construction stays correct if heterogeneous cluster families are
/// ever added: only structurally identical clusters end up in one orbit.
pub fn clustered_canonicalizer(model: &ClusteredModel) -> MarkingCanonicalizer {
    let init = model.net.initial_marking();
    let signature = |p: &Places| -> [u32; 5] {
        [
            init.tokens(p.tm),
            init.tokens(p.ucm),
            init.tokens(p.dcm),
            init.tokens(p.gf),
            init.tokens(p.ng),
        ]
    };
    let mut uf = UnionFind::new(model.cluster_places.len());
    let mut first_with: HashMap<[u32; 5], usize> = HashMap::new();
    for (i, p) in model.cluster_places.iter().enumerate() {
        match first_with.entry(signature(p)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                uf.union(*e.get(), i);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    let (labels, _) = uf.component_labels();
    let mut orbits: Vec<Vec<Vec<PlaceId>>> = vec![Vec::new(); uf.component_count()];
    for (i, p) in model.cluster_places.iter().enumerate() {
        orbits[labels[i] as usize].push(vec![p.tm, p.ucm, p.dcm, p.gf, p.ng]);
    }
    MarkingCanonicalizer::new(orbits).expect("cluster blocks are disjoint by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn::reach::{explore, ExploreOptions};

    fn small_cfg() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = 10;
        c.vote_participants = 3;
        c
    }

    #[test]
    fn model_builds_with_paper_defaults() {
        let m = build_model(&SystemConfig::paper_default());
        assert_eq!(m.net.place_count(), 5);
        assert_eq!(m.net.transition_count(), 7);
        for t in ["T_CP", "T_IDS", "T_FA", "T_DRQ", "T_PAR", "T_MER", "T_RK"] {
            assert!(m.net.transition_by_name(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn initial_marking_matches_config() {
        let m = build_model(&small_cfg());
        let init = m.net.initial_marking();
        assert_eq!(init.tokens(m.places.tm), 10);
        assert_eq!(init.tokens(m.places.ucm), 0);
        assert_eq!(init.tokens(m.places.ng), 1);
        assert!(!m.net.is_absorbing_marking(&init));
    }

    #[test]
    fn c2_boundary_exact() {
        // U/(T+U) > 1/3 ⟺ 2U > T
        assert!(!c2_holds(2, 1)); // exactly 1/3: not a failure
        assert!(c2_holds(1, 1)); // 1/2 > 1/3
        assert!(!c2_holds(10, 5)); // exactly 1/3
        assert!(c2_holds(9, 5));
        assert!(!c2_holds(0, 0));
        assert!(c2_holds(0, 1)); // fully compromised
    }

    #[test]
    fn absorbing_on_gf_token() {
        let m = build_model(&small_cfg());
        let mut marking = m.net.initial_marking();
        marking.set_tokens(m.places.gf, 1);
        assert!(m.net.is_absorbing_marking(&marking));
    }

    #[test]
    fn reachability_is_finite_and_bounded() {
        let m = build_model(&small_cfg());
        let g = explore(&m.net, &ExploreOptions::default()).unwrap();
        // (T, U, NG, GF) with T+U ≤ 10, NG ≤ 4: comfortably small
        assert!(g.state_count() < 2_000, "{} states", g.state_count());
        assert!(g.absorbing_states().next().is_some());
        // every state conserves T + U + D = N
        for s in &g.states {
            let total = s.tokens(m.places.tm) + s.tokens(m.places.ucm) + s.tokens(m.places.dcm);
            assert_eq!(total, 10);
        }
    }

    #[test]
    fn group_count_stays_in_bounds() {
        let m = build_model(&small_cfg());
        let g = explore(&m.net, &ExploreOptions::default()).unwrap();
        for s in &g.states {
            let ngv = s.tokens(m.places.ng);
            assert!(ngv >= 1 && ngv <= m.config.max_groups, "NG = {ngv}");
        }
    }

    #[test]
    fn population_per_group_splits() {
        let pop = Population {
            trusted: 60,
            undetected: 20,
            groups: 2,
        };
        assert_eq!(pop.live(), 80);
        assert_eq!(pop.per_group_live(), 40);
        let (good_b, bad_b) = pop.per_group_for_bad_target();
        assert_eq!(bad_b, 10);
        assert_eq!(good_b, 30);
        let (good_g, bad_g) = pop.per_group_for_good_target();
        assert_eq!(good_g, 30);
        assert_eq!(bad_g, 10);
    }

    #[test]
    fn per_group_bad_target_never_zero_bad() {
        // U = 1 spread over 4 groups still leaves the target's group with
        // one bad node (the target itself).
        let pop = Population {
            trusted: 79,
            undetected: 1,
            groups: 4,
        };
        let (_, bad) = pop.per_group_for_bad_target();
        assert_eq!(bad, 1);
    }

    #[test]
    fn pfn_pfp_edge_cases() {
        let cfg = small_cfg();
        let no_bad = Population {
            trusted: 10,
            undetected: 0,
            groups: 1,
        };
        assert_eq!(pfn_for(&cfg, &no_bad), 0.0);
        assert!(pfp_for(&cfg, &no_bad) > 0.0); // pure host-IDS false alarms
        let no_good = Population {
            trusted: 0,
            undetected: 5,
            groups: 1,
        };
        assert_eq!(pfp_for(&cfg, &no_good), 0.0);
        assert!(pfn_for(&cfg, &no_good) > 0.9); // colluders protect each other
    }

    #[test]
    fn rates_positive_in_initial_state() {
        let m = build_model(&small_cfg());
        let init = m.net.initial_marking();
        let enabled = m.net.enabled_timed(&init).unwrap();
        let names: Vec<&str> = enabled
            .iter()
            .map(|&(t, _)| m.net.transition_name(t))
            .collect();
        // At T=N, U=0: T_CP (attack), T_FA (false alarms), T_PAR, T_RK are
        // live; T_IDS and T_DRQ need U ≥ 1; T_MER needs NG ≥ 2.
        assert!(names.contains(&"T_CP"));
        assert!(names.contains(&"T_FA"));
        assert!(names.contains(&"T_PAR"));
        assert!(!names.contains(&"T_IDS"));
        assert!(!names.contains(&"T_DRQ"));
        assert!(!names.contains(&"T_MER"));
    }

    #[test]
    fn t_rk_is_cost_only_self_loop() {
        let m = build_model(&small_cfg());
        let g = explore(&m.net, &ExploreOptions::default()).unwrap();
        let t_rk = m.net.transition_by_name("T_RK").unwrap();
        // T_RK never appears as a CTMC edge, but its rate is recorded
        let on_edges = g.edges.iter().flatten().any(|e| e.transition == t_rk);
        assert!(!on_edges);
        let recorded = g.self_loop_rates.iter().flatten().any(|&(t, _)| t == t_rk);
        assert!(recorded);
    }

    #[test]
    fn higher_attack_rate_adds_no_states() {
        // structure is rate-independent
        let cfg = small_cfg();
        let mut hot = cfg.clone();
        hot.attacker.base_rate *= 100.0;
        let g1 = explore(&build_model(&cfg).net, &ExploreOptions::default()).unwrap();
        let g2 = explore(&build_model(&hot).net, &ExploreOptions::default()).unwrap();
        assert_eq!(g1.state_count(), g2.state_count());
    }
}
