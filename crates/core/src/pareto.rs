//! Security-vs-performance trade-off analysis: the design-space enumeration
//! and Pareto frontier behind the paper's closing recommendation ("select
//! the best intrusion detection interval to maximize MTTSF while satisfying
//! the Ĉtotal performance requirement").

use crate::config::SystemConfig;
use crate::metrics::{Evaluation, ExactTemplate};
use rayon::prelude::*;
use spn::error::SpnError;

/// One evaluated design alternative.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Vote participants.
    pub m: u32,
    /// Base detection interval (s).
    pub t_ids: f64,
    /// Full evaluation.
    pub evaluation: Evaluation,
}

impl DesignPoint {
    /// True when `other` is at least as good on both objectives and
    /// strictly better on one (maximize MTTSF, minimize Ĉtotal).
    pub fn dominated_by(&self, other: &DesignPoint) -> bool {
        let better_mttsf = other.evaluation.mttsf_seconds >= self.evaluation.mttsf_seconds;
        let better_cost =
            other.evaluation.c_total_hop_bits_per_sec <= self.evaluation.c_total_hop_bits_per_sec;
        let strictly = other.evaluation.mttsf_seconds > self.evaluation.mttsf_seconds
            || other.evaluation.c_total_hop_bits_per_sec < self.evaluation.c_total_hop_bits_per_sec;
        better_mttsf && better_cost && strictly
    }
}

/// Evaluate the full `(m, T_IDS)` design space in parallel.
///
/// Both axes are rate-only, so the whole product shares one state-space
/// exploration (explore once, solve many).
///
/// # Errors
/// Returns the first evaluation failure.
pub fn design_space(
    cfg: &SystemConfig,
    ms: &[u32],
    tids_grid: &[f64],
) -> Result<Vec<DesignPoint>, SpnError> {
    let template = ExactTemplate::new(cfg)?;
    let combos: Vec<(u32, f64)> = ms
        .iter()
        .flat_map(|&m| tids_grid.iter().map(move |&t| (m, t)))
        .collect();
    combos
        .par_iter()
        .map(|&(m, t)| {
            let e = template.evaluate(&cfg.with_vote_participants(m).with_tids(t))?;
            Ok(DesignPoint {
                m,
                t_ids: t,
                evaluation: e,
            })
        })
        .collect()
}

/// Pareto-efficient subset (maximize MTTSF, minimize Ĉtotal), sorted by
/// increasing cost.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| p.dominated_by(q)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        a.evaluation
            .c_total_hop_bits_per_sec
            .partial_cmp(&b.evaluation.c_total_hop_bits_per_sec)
            .expect("finite costs")
    });
    front
}

/// The cheapest design meeting an MTTSF floor, if any.
pub fn cheapest_meeting_mttsf(points: &[DesignPoint], min_mttsf: f64) -> Option<DesignPoint> {
    points
        .iter()
        .filter(|p| p.evaluation.mttsf_seconds >= min_mttsf)
        .min_by(|a, b| {
            a.evaluation
                .c_total_hop_bits_per_sec
                .partial_cmp(&b.evaluation.c_total_hop_bits_per_sec)
                .expect("finite costs")
        })
        .cloned()
}

/// The most survivable design under a cost ceiling, if any.
pub fn best_mttsf_under_cost(points: &[DesignPoint], max_cost: f64) -> Option<DesignPoint> {
    points
        .iter()
        .filter(|p| p.evaluation.c_total_hop_bits_per_sec <= max_cost)
        .max_by(|a, b| {
            a.evaluation
                .mttsf_seconds
                .partial_cmp(&b.evaluation.mttsf_seconds)
                .expect("finite MTTSF")
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = 14;
        c
    }

    #[test]
    fn design_space_covers_grid() {
        let pts = design_space(&small(), &[3, 5], &[30.0, 120.0, 480.0]).unwrap();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.evaluation.mttsf_seconds > 0.0));
    }

    #[test]
    fn front_is_mutually_nondominated_and_sorted() {
        let pts = design_space(&small(), &[3, 5, 7], &[15.0, 60.0, 240.0, 600.0]).unwrap();
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        assert!(front.len() <= pts.len());
        for a in &front {
            for b in &front {
                assert!(!a.dominated_by(b) || std::ptr::eq(a, b));
            }
        }
        for w in front.windows(2) {
            assert!(
                w[0].evaluation.c_total_hop_bits_per_sec
                    <= w[1].evaluation.c_total_hop_bits_per_sec
            );
            // along a sorted front, more cost must buy more survivability
            assert!(w[0].evaluation.mttsf_seconds <= w[1].evaluation.mttsf_seconds);
        }
    }

    #[test]
    fn constrained_selection() {
        let pts = design_space(&small(), &[3, 5], &[15.0, 60.0, 240.0]).unwrap();
        let best_mttsf = pts
            .iter()
            .map(|p| p.evaluation.mttsf_seconds)
            .fold(f64::MIN, f64::max);
        // floor just below the best: must pick something
        let pick = cheapest_meeting_mttsf(&pts, best_mttsf * 0.999).unwrap();
        assert!(pick.evaluation.mttsf_seconds >= best_mttsf * 0.999);
        // impossible floor: none
        assert!(cheapest_meeting_mttsf(&pts, best_mttsf * 10.0).is_none());
        // generous ceiling: the most survivable overall
        let under = best_mttsf_under_cost(&pts, f64::INFINITY).unwrap();
        assert!((under.evaluation.mttsf_seconds - best_mttsf).abs() < 1e-9);
        // impossible ceiling: none
        assert!(best_mttsf_under_cost(&pts, 0.0).is_none());
    }

    #[test]
    fn domination_is_irreflexive() {
        let pts = design_space(&small(), &[3], &[60.0]).unwrap();
        assert!(!pts[0].dominated_by(&pts[0]));
    }
}
