//! `gcsids` — the Cho–Chen (IPPS 2009) model of voting-based intrusion
//! detection in mobile group communication systems.
//!
//! This crate assembles the substrates ([`spn`], [`manet`], [`gcs`],
//! [`ids`]) into the paper's analytical model and its validation
//! machinery:
//!
//! * [`config`] — every model parameter with the paper's §5 defaults;
//! * [`model`] — programmatic construction of the Figure-1 SPN (places
//!   `Tm`, `UCm`, `DCm`, `GF`, `NG`; transitions `T_CP`, `T_IDS`, `T_FA`,
//!   `T_DRQ`, `T_PAR`, `T_MER`, `T_RK`; absorbing conditions C1/C2);
//! * [`cost`] — the six-component communication-cost model (hop·bits/s);
//! * [`metrics`] — MTTSF and Ĉtotal evaluation via the CTMC solvers;
//! * [`clustered`] — symmetry-lumped and hierarchically composed exact
//!   evaluation of K-of-C clustered deployments (100+-node systems);
//! * [`sweep`] — TIDS / m / detection-shape parameter sweeps and optimal
//!   interval identification (Figures 2–5);
//! * [`pareto`] — design-space enumeration and the MTTSF-vs-cost Pareto
//!   frontier (the paper's closing design-selection recommendation);
//! * [`des`] — a protocol-level discrete-event simulation (actual votes,
//!   actual GDH rekeys, sampled host-IDS errors) that cross-validates the
//!   analytic model;
//! * [`des_mobility`] — the fully integrated variant where groups are the
//!   live connected components of a random-waypoint network rather than a
//!   calibrated birth–death process.
//!
//! # Quickstart
//!
//! ```
//! use gcsids::config::SystemConfig;
//! use gcsids::metrics::evaluate;
//!
//! // A small system (evaluation is exact, so small N keeps doctests fast).
//! let mut cfg = SystemConfig::paper_default();
//! cfg.node_count = 12;
//! cfg.vote_participants = 3;
//! let eval = evaluate(&cfg).unwrap();
//! assert!(eval.mttsf_seconds > 0.0);
//! assert!(eval.c_total_hop_bits_per_sec > 0.0);
//! ```

pub mod clustered;
pub mod config;
pub mod cost;
pub mod des;
pub mod des_mobility;
pub mod metrics;
pub mod model;
pub mod pareto;
pub mod scenario_model;
pub mod sweep;

pub use clustered::{
    evaluate_clustered, evaluate_clustered_with_survival, ClusteredEvaluation, ClusteredPath,
    LumpingStats,
};
pub use config::{ClusterTopology, SystemConfig};
pub use cost::CostBreakdown;
pub use des::{
    mission_success_probability, run_des_sampled, survival_curve, DesConfig, DesOutcome,
    FailureCause, SampledDesStats,
};
pub use des_mobility::{
    run_mobility_des, run_mobility_des_sampled, MobilityDesConfig, MobilityDesOutcome,
};
pub use metrics::{evaluate, Evaluation};
pub use model::{build_clustered_model, clustered_canonicalizer, ClusteredModel};
pub use pareto::{design_space, pareto_front, DesignPoint};
pub use scenario_model::{
    build_scenario_model, evaluate_scenario, evaluate_scenario_graph, scenario_cost_reward,
    scenario_failed, scenario_impulses, scenario_system, DetectionTotals, ScenarioModel,
    ScenarioPlaces,
};
pub use sweep::{optimal_tids_for_mttsf, sweep_tids, SweepPoint, SweepSeries};
