//! Clustered-deployment evaluation: exact MTTSF, survival, and cost for
//! `C` identical GCS/IDS clusters with a K-of-C system failure criterion.
//!
//! Two exact solution paths share one entry point
//! ([`evaluate_clustered_with_survival`]):
//!
//! * **Flat lumped quotient.** Build the flat clustered net
//!   ([`crate::model::build_clustered_model`]), explore it under the
//!   member-permutation canonicalizer
//!   ([`crate::model::clustered_canonicalizer`]), and solve the lumped
//!   CTMC directly. Cluster permutations are net automorphisms (the blocks
//!   are structurally identical and share no places), so the quotient is
//!   strongly lumpable and every metric is exact. The lumped state count is
//!   the number of *multisets* of single-cluster states —
//!   `C(d + C − 1, C)` instead of `d^C` — a combinatorial reduction.
//! * **Hierarchical order-statistic composition.** When even the multiset
//!   bound exceeds the exploration budget, solve ONE cluster's absorbing
//!   chain and compose analytically: clusters evolve independently until
//!   system absorption (each freezes on its own failure), so the system
//!   survival is the binomial tail
//!   `S_sys(t) = Σ_{j<K} C(C,j) F(t)^j S(t)^{C−j}`
//!   over the cluster failure law `F = 1 − S`, the system MTTSF is its
//!   integral (Simpson quadrature on a horizon where `S_sys < 1e-12`), and
//!   the failure-cause split is the K-th-order-statistic integral
//!   `C·C(C−1,K−1) ∫ F^{K−1} S^{C−K} dF_cause`. Cost uses the exact
//!   per-cluster transient expected rate `ρ(t) = E[rate | alive]`, sampled
//!   at probe times via uniformization and interpolated onto the
//!   quadrature grid; only that interpolation is inexact, and it converges
//!   with the probe count. A parent aggregate SPN (one `fail` transition
//!   per cluster at rate `1/MTTSF_c`, explored through the same lumping
//!   pipeline) realises the inter-cluster model whose counts the stats
//!   report.

use crate::config::{ClusterTopology, SystemConfig};
use crate::cost::{cost_breakdown, gdh_rekey_hop_bits, CostBreakdown};
use crate::metrics::{eviction_impulses, Evaluation};
use crate::model::{
    build_clustered_model, build_model, cluster_failed, clustered_canonicalizer, population,
    ClusteredModel, GcsIdsModel,
};
use numerics::special::ln_binomial;
use spn::ctmc::{Ctmc, TransientOptions};
use spn::error::SpnError;
use spn::model::{Marking, PlaceId, Spn, SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions, MarkingCanonicalizer, ReachabilityGraph};
use spn::reward::{ImpulseReward, RateReward};

/// Which solution path [`evaluate_clustered_with_survival`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteredPath {
    /// The lumped flat chain fit the exploration budget and was solved
    /// directly.
    FlatLumped,
    /// The single-cluster chain was solved and composed analytically,
    /// with the parent aggregate chain explored for the inter-cluster
    /// model.
    Hierarchical,
}

/// State-space bookkeeping of a clustered solve: what was actually solved,
/// and how much lumping saved relative to the unlumped product space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumpingStats {
    /// Solution path taken.
    pub path: ClusteredPath,
    /// Tangible states actually solved (lumped flat chain, or cluster
    /// chain + parent aggregate chain on the hierarchical path).
    pub states: usize,
    /// CTMC edges actually solved.
    pub edges: usize,
    /// Symmetry orbits supplied to exploration.
    pub orbits: usize,
    /// Interchangeable member blocks across those orbits.
    pub orbit_members: usize,
    /// Upper bound on the unlumped flat product space, `d^C` for `d`
    /// single-cluster states (`inf` when it overflows f64).
    pub unlumped_state_estimate: f64,
    /// `unlumped_state_estimate / states` — the observable reduction
    /// factor.
    pub reduction: f64,
}

/// Result of a clustered evaluation: the standard metric set, the optional
/// mission survival curve, and the lumping bookkeeping.
#[derive(Debug, Clone)]
pub struct ClusteredEvaluation {
    /// MTTSF, Ĉtotal, failure split, and solved state counts.
    pub evaluation: Evaluation,
    /// `P[no system failure by t]` on the requested mission grid.
    pub survival: Option<Vec<f64>>,
    /// Path taken and reduction achieved.
    pub stats: LumpingStats,
}

/// Number of multisets of size `c` over `d` items, `C(d + c − 1, c)` — the
/// exact upper bound on the lumped flat state count.
pub fn multiset_count(d: usize, c: u32) -> f64 {
    let mut v = 1.0f64;
    for i in 1..=u64::from(c) {
        v *= (d as f64 - 1.0 + i as f64) / i as f64;
        if !v.is_finite() {
            return f64::INFINITY;
        }
    }
    v
}

/// Evaluate a clustered deployment with the default exploration budget.
///
/// # Errors
/// Propagates validation, exploration, and solver failures.
pub fn evaluate_clustered(
    cfg: &SystemConfig,
    topo: &ClusterTopology,
) -> Result<ClusteredEvaluation, SpnError> {
    evaluate_clustered_with_survival(cfg, topo, &[], &ExploreOptions::default())
}

/// Evaluate a clustered deployment: exact MTTSF, cost, failure split, and
/// mission survival for `topo.clusters` copies of `cfg` failing as a
/// system once `topo.failure_threshold` clusters have failed.
///
/// Picks the flat lumped path when the multiset bound fits
/// `opts.max_states`, the hierarchical composition otherwise. Any
/// `opts.lumping` supplied by the caller is ignored — the cluster
/// symmetry is derived from the model itself.
///
/// # Errors
/// Propagates validation, exploration, and solver failures.
pub fn evaluate_clustered_with_survival(
    cfg: &SystemConfig,
    topo: &ClusterTopology,
    mission_times: &[f64],
    opts: &ExploreOptions,
) -> Result<ClusteredEvaluation, SpnError> {
    cfg.validate().map_err(SpnError::InvalidModel)?;
    topo.validate().map_err(SpnError::InvalidModel)?;

    // The single-cluster chain is needed by both paths: it sizes the flat
    // quotient, and the hierarchical path composes from it.
    let cluster_model = build_model(cfg);
    let base_opts = ExploreOptions {
        lumping: None,
        ..opts.clone()
    };
    let cluster_graph = explore(&cluster_model.net, &base_opts)?;
    let d = cluster_graph.state_count();
    let unlumped_estimate = (d as f64).powi(topo.clusters as i32);
    let lumped_estimate = multiset_count(d, topo.clusters);

    if lumped_estimate <= opts.max_states as f64 {
        // --- flat lumped path ---------------------------------------------
        let model = build_clustered_model(cfg, topo);
        let canon = clustered_canonicalizer(&model);
        let orbits = canon.orbit_count();
        let orbit_members = canon.member_count();
        let lumped_opts = ExploreOptions {
            lumping: Some(canon),
            ..opts.clone()
        };
        let graph = explore(&model.net, &lumped_opts)?;
        let (evaluation, survival) = evaluate_clustered_graph(&model, &graph, mission_times)?;
        let states = graph.state_count();
        let stats = LumpingStats {
            path: ClusteredPath::FlatLumped,
            states,
            edges: graph.edge_count(),
            orbits,
            orbit_members,
            unlumped_state_estimate: unlumped_estimate,
            reduction: unlumped_estimate / states.max(1) as f64,
        };
        return Ok(ClusteredEvaluation {
            evaluation,
            survival,
            stats,
        });
    }

    // --- hierarchical path ------------------------------------------------
    let ctmc = Ctmc::from_graph(&cluster_graph)?;
    let absorption = ctmc.mean_time_to_absorption()?;
    let cluster_mttsf = absorption.mtta;
    if !(cluster_mttsf.is_finite() && cluster_mttsf > 0.0) {
        return Err(SpnError::InvalidModel(format!(
            "cluster MTTSF {cluster_mttsf} is not a positive finite time; cannot compose"
        )));
    }
    // Marginal cause split as interpolation fallback for probe times where
    // no absorbed mass exists yet.
    let mut marginal_c1 = 0.0;
    let mut marginal_all = 0.0;
    for (i, &p) in absorption.absorption_probability.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        marginal_all += p;
        if cluster_graph.states[i].tokens(cluster_model.places.gf) > 0 {
            marginal_c1 += p;
        }
    }
    let fallback_phi = if marginal_all > 0.0 {
        marginal_c1 / marginal_all
    } else {
        0.0
    };

    let (mut evaluation, survival) = hierarchical_compose(
        &cluster_model,
        &cluster_graph,
        &ctmc,
        cluster_mttsf,
        fallback_phi,
        topo,
        mission_times,
    )?;

    // The parent inter-cluster model: one aggregate failure transition per
    // cluster, explored through the same lumping pipeline (K+1 lumped
    // states against the Σ_{j≤K} C(C,j) unlumped front).
    let (parent_net, parent_canon) = parent_aggregate_model(cluster_mttsf, topo);
    let orbits = parent_canon.orbit_count();
    let orbit_members = parent_canon.member_count();
    let parent_opts = ExploreOptions {
        lumping: Some(parent_canon),
        ..opts.clone()
    };
    let parent_graph = explore(&parent_net, &parent_opts)?;

    let states = cluster_graph.state_count() + parent_graph.state_count();
    let edges = cluster_graph.edge_count() + parent_graph.edge_count();
    evaluation.state_count = states;
    evaluation.edge_count = edges;
    let stats = LumpingStats {
        path: ClusteredPath::Hierarchical,
        states,
        edges,
        orbits,
        orbit_members,
        unlumped_state_estimate: unlumped_estimate,
        reduction: unlumped_estimate / states.max(1) as f64,
    };
    Ok(ClusteredEvaluation {
        evaluation,
        survival,
        stats,
    })
}

/// Solve an already-explored flat clustered graph (lumped or not): MTTSF,
/// cost accrued by non-failed clusters, the exact failure-cause split via
/// absorbing-flux attribution, and the optional mission survival curve.
///
/// # Errors
/// Propagates solver failures.
pub fn evaluate_clustered_graph(
    model: &ClusteredModel,
    graph: &ReachabilityGraph,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
    let cfg = &model.config;
    let ctmc = Ctmc::from_graph(graph)?;
    let absorption = ctmc.mean_time_to_absorption()?;

    // Rate components: every cluster that has not locally failed accrues
    // the per-cluster cost of its own population.
    let rate_components: Vec<CostBreakdown> = graph
        .states
        .iter()
        .map(|m| {
            let mut acc = CostBreakdown::default();
            for p in &model.cluster_places {
                if !cluster_failed(p, m) {
                    acc = acc.add(&cost_breakdown(cfg, &population(p, m)));
                }
            }
            acc
        })
        .collect();

    // Eviction rekeys per cluster (a failed cluster's eviction transitions
    // are guarded off, so they contribute nothing automatically).
    let mut impulse_rates = vec![0.0; graph.state_count()];
    for imp in clustered_eviction_impulses(model)? {
        for (acc, v) in impulse_rates
            .iter_mut()
            .zip(imp.per_state(&model.net, graph))
        {
            *acc += v;
        }
    }

    let mttsf = absorption.mtta;
    let mut accumulated = CostBreakdown::default();
    let mut accumulated_impulse = 0.0;
    for (i, sojourn) in absorption.sojourn.iter().enumerate() {
        if *sojourn > 0.0 {
            accumulated = accumulated.add(&rate_components[i].scale(*sojourn));
            accumulated_impulse += impulse_rates[i] * sojourn;
        }
    }
    accumulated.rekey += accumulated_impulse;
    let components = if mttsf > 0.0 {
        accumulated.scale(1.0 / mttsf)
    } else {
        CostBreakdown::default()
    };

    let (p_c1, p_c2) = absorbing_flux_split(model, graph, &absorption.sojourn);

    let mut evaluation = Evaluation {
        mttsf_seconds: mttsf,
        c_total_hop_bits_per_sec: components.total(),
        cost_components: components,
        p_failure_c1: p_c1,
        p_failure_c2: p_c2,
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        transient: None,
    };
    let survival = if mission_times.is_empty() {
        None
    } else {
        let (curve, stats) =
            ctmc.survival_curve_with_stats(mission_times, &TransientOptions::default());
        evaluation.transient = Some(stats);
        Some(curve)
    };
    Ok((evaluation, survival))
}

/// Exact failure-cause split for a flat clustered graph: the probability
/// flux into absorbing states, attributed by the cluster whose transition
/// completed the K-th failure. System absorption changes exactly one
/// cluster from healthy to failed (transitions touch only their own
/// block), so re-firing each absorbing edge identifies that cluster — and
/// its `GF` token decides C1 vs C2. This works unchanged on the lumped
/// quotient, where the representative's edge carries the whole orbit's
/// flux.
fn absorbing_flux_split(
    model: &ClusteredModel,
    graph: &ReachabilityGraph,
    sojourn: &[f64],
) -> (f64, f64) {
    let mut c1 = 0.0;
    let mut c2 = 0.0;
    for (u, edges) in graph.edges.iter().enumerate() {
        if graph.absorbing[u] || sojourn[u] <= 0.0 {
            continue;
        }
        let mu = &graph.states[u];
        for e in edges {
            if !graph.absorbing[e.target as usize] {
                continue;
            }
            // Pre-canonicalization successor: the firing cluster's places
            // are still in the frame `mu` uses.
            let fired = model.net.fire(e.transition, mu);
            let newly_failed = model
                .cluster_places
                .iter()
                .find(|p| cluster_failed(p, &fired) && !cluster_failed(p, mu));
            if let Some(p) = newly_failed {
                let mass = sojourn[u] * e.rate;
                if fired.tokens(p.gf) > 0 {
                    c1 += mass;
                } else {
                    c2 += mass;
                }
            }
        }
    }
    let total = c1 + c2;
    if total > 0.0 {
        (c1 / total, c2 / total)
    } else {
        (0.0, 0.0)
    }
}

/// Per-cluster eviction-rekey impulse rewards for a flat clustered net
/// (every cluster's `T_IDS#i` / `T_FA#i` firing charges a GDH rekey of
/// that cluster's current group size), shared by the exact evaluator and
/// the SPN-simulation backend. A failed cluster's eviction transitions
/// are guarded off, so they stop charging automatically.
///
/// # Errors
/// Returns [`SpnError::InvalidModel`] if the net is missing an eviction
/// transition.
pub fn clustered_eviction_impulses(model: &ClusteredModel) -> Result<Vec<ImpulseReward>, SpnError> {
    let mut out = Vec::new();
    for (i, places) in model.cluster_places.iter().enumerate() {
        let places = *places;
        for base in ["T_IDS", "T_FA"] {
            let name = format!("{base}#{i}");
            let t = model
                .net
                .transition_by_name(&name)
                .ok_or_else(|| SpnError::InvalidModel(format!("missing transition {name}")))?;
            let cfg = model.config.clone();
            out.push(ImpulseReward::new(
                format!("evict-rekey-{name}"),
                t,
                move |m: &Marking| {
                    let pop = population(&places, m);
                    gdh_rekey_hop_bits(&cfg, pop.per_group_live())
                },
            ));
        }
    }
    Ok(out)
}

/// A total-cost rate reward over a flat clustered net (the SPN-simulation
/// counterpart of the exact per-state rates): each non-failed cluster
/// contributes its own population's cost.
pub fn clustered_total_cost_reward(model: &ClusteredModel) -> RateReward {
    let cfg = model.config.clone();
    let blocks = model.cluster_places.clone();
    RateReward::new("c_total_rate", move |m| {
        blocks
            .iter()
            .filter(|p| !cluster_failed(p, m))
            .map(|p| cost_breakdown(&cfg, &population(p, m)).total())
            .sum()
    })
}

/// The parent inter-cluster model of the hierarchical path: one place per
/// cluster (token = cluster up), one aggregate failure transition per
/// cluster at rate `1/MTTSF_cluster`, absorbing once
/// `topo.failure_threshold` tokens are gone — plus the single-orbit
/// canonicalizer that lumps it to `K+1` states.
pub fn parent_aggregate_model(
    cluster_mttsf: f64,
    topo: &ClusterTopology,
) -> (Spn, MarkingCanonicalizer) {
    let mut b = SpnBuilder::new();
    let rate = 1.0 / cluster_mttsf;
    let places: Vec<PlaceId> = (0..topo.clusters)
        .map(|i| b.add_place(format!("Up#{i}"), 1))
        .collect();
    for (i, &p) in places.iter().enumerate() {
        b.add_transition(TransitionDef::timed(format!("fail#{i}"), move |_| rate).input(p, 1));
    }
    let threshold = topo.failure_threshold;
    let clusters = topo.clusters;
    let pl = places.clone();
    b.absorbing_when(move |m: &Marking| {
        let alive: u32 = pl.iter().map(|&p| m.tokens(p)).sum();
        clusters - alive >= threshold
    });
    let net = b.build().expect("parent aggregate net is consistent");
    let orbit: Vec<Vec<PlaceId>> = places.iter().map(|&p| vec![p]).collect();
    let canon = MarkingCanonicalizer::new(vec![orbit]).expect("singleton blocks are disjoint");
    (net, canon)
}

/// `P[fewer than k of c iid clusters have failed]` given per-cluster
/// survival `s`, in log space so large `c` stays finite.
fn binomial_tail_survival(s: f64, c: u32, k: u32) -> f64 {
    let f = (1.0 - s).clamp(0.0, 1.0);
    let s = s.clamp(0.0, 1.0);
    let mut total = 0.0;
    for j in 0..k.min(c + 1) {
        total += binomial_pmf(c, j, f, s);
    }
    total.clamp(0.0, 1.0)
}

/// `C(c, j) f^j s^(c-j)` in log space.
fn binomial_pmf(c: u32, j: u32, f: f64, s: f64) -> f64 {
    if j > c {
        return 0.0;
    }
    if f <= 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if s <= 0.0 {
        return if j == c { 1.0 } else { 0.0 };
    }
    (ln_binomial(u64::from(c), u64::from(j)) + f64::from(j) * f.ln() + f64::from(c - j) * s.ln())
        .exp()
}

/// Composite Simpson over an odd-length sample vector with spacing `h`.
fn simpson_scalar(values: &[f64], h: f64) -> f64 {
    debug_assert!(values.len() >= 3 && values.len() % 2 == 1);
    let m = values.len() - 1;
    let mut acc = values[0] + values[m];
    for (i, v) in values.iter().enumerate().take(m).skip(1) {
        acc += if i % 2 == 1 { 4.0 * v } else { 2.0 * v };
    }
    acc * h / 3.0
}

/// Composite Simpson over per-component cost breakdowns.
fn simpson_breakdown(values: &[CostBreakdown], h: f64) -> CostBreakdown {
    debug_assert!(values.len() >= 3 && values.len() % 2 == 1);
    let m = values.len() - 1;
    let mut acc = values[0].add(&values[m]);
    for (i, v) in values.iter().enumerate().take(m).skip(1) {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc = acc.add(&v.scale(w));
    }
    acc.scale(h / 3.0)
}

/// Piecewise-linear interpolation of probe samples onto an ascending grid
/// (probe times bracket the grid by construction).
fn lerp_grid(probe_t: &[f64], probe_v: &[f64], grid: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.len());
    let mut seg = 0usize;
    for &t in grid {
        while seg + 2 < probe_t.len() && probe_t[seg + 1] < t {
            seg += 1;
        }
        let (t0, t1) = (probe_t[seg], probe_t[seg + 1]);
        let a = if t1 > t0 {
            ((t - t0) / (t1 - t0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(probe_v[seg] * (1.0 - a) + probe_v[seg + 1] * a);
    }
    out
}

/// As [`lerp_grid`], componentwise over cost breakdowns.
fn lerp_grid_breakdown(
    probe_t: &[f64],
    probe_v: &[CostBreakdown],
    grid: &[f64],
) -> Vec<CostBreakdown> {
    let mut out = Vec::with_capacity(grid.len());
    let mut seg = 0usize;
    for &t in grid {
        while seg + 2 < probe_t.len() && probe_t[seg + 1] < t {
            seg += 1;
        }
        let (t0, t1) = (probe_t[seg], probe_t[seg + 1]);
        let a = if t1 > t0 {
            ((t - t0) / (t1 - t0)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(probe_v[seg].scale(1.0 - a).add(&probe_v[seg + 1].scale(a)));
    }
    out
}

/// The hierarchical order-statistic composition over one solved cluster
/// chain. Returns the system evaluation (state/edge counts still those of
/// the cluster chain — the caller adds the parent aggregate) and the
/// mission survival curve.
#[allow(clippy::too_many_arguments)]
fn hierarchical_compose(
    cluster_model: &GcsIdsModel,
    cluster_graph: &ReachabilityGraph,
    ctmc: &Ctmc,
    cluster_mttsf: f64,
    fallback_phi: f64,
    topo: &ClusterTopology,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
    let c = topo.clusters;
    let k = topo.failure_threshold;
    let topts = TransientOptions::default();

    // --- horizon: smallest t_end (geometric steps) with S_sys < 1e-12 ----
    let sys_surv_at = |t: f64| -> f64 {
        let s = ctmc.survival_curve(&[t], &topts)[0];
        binomial_tail_survival(s, c, k)
    };
    let mut t_end = 8.0 * cluster_mttsf;
    let mut steps = 0;
    while sys_surv_at(t_end) >= 1e-12 && steps < 60 {
        t_end *= 1.6;
        steps += 1;
    }
    steps = 0;
    while steps < 60 && sys_surv_at(t_end / 1.6) < 1e-12 {
        t_end /= 1.6;
        steps += 1;
    }

    // --- quadrature grid with exact cluster survival ----------------------
    // S_sys decays on the scale of the K-th order statistic, which shrinks
    // as C grows — refine the grid for wide systems.
    let m_intervals: usize = if c <= 64 { 2048 } else { 8192 };
    let h = t_end / m_intervals as f64;
    let grid: Vec<f64> = (0..=m_intervals).map(|i| i as f64 * h).collect();
    let (s_grid, mut tstats) = ctmc.survival_curve_with_stats(&grid, &topts);

    // --- probe distributions: ρ(t) = E[rate | alive], φ(t) = C1 share ----
    // Quadratically-spaced probes front-load resolution where the cost
    // rate and the cause mix actually move.
    let places = cluster_model.places;
    let cfg = &cluster_model.config;
    let n = cluster_graph.state_count();
    let mut state_rates: Vec<CostBreakdown> = (0..n)
        .map(|i| {
            if cluster_graph.absorbing[i] {
                CostBreakdown::default()
            } else {
                cost_breakdown(cfg, &population(&places, &cluster_graph.states[i]))
            }
        })
        .collect();
    let mut impulse_rates = vec![0.0; n];
    for imp in eviction_impulses(cluster_model)? {
        for (acc, v) in impulse_rates
            .iter_mut()
            .zip(imp.per_state(&cluster_model.net, cluster_graph))
        {
            *acc += v;
        }
    }
    for i in 0..n {
        if !cluster_graph.absorbing[i] {
            state_rates[i].rekey += impulse_rates[i];
        }
    }

    const PROBES: usize = 33;
    let probe_times: Vec<f64> = (0..PROBES)
        .map(|p| t_end * (p as f64 / (PROBES - 1) as f64).powi(2))
        .collect();
    let mut probe_rho: Vec<CostBreakdown> = Vec::with_capacity(PROBES);
    let mut probe_phi: Vec<f64> = Vec::with_capacity(PROBES);
    let mut last_rho = CostBreakdown::default();
    let mut have_rho = false;
    let mut last_phi: Option<f64> = None;
    for &t in &probe_times {
        let pi = ctmc.transient_distribution(t, &topts);
        let mut alive_mass = 0.0;
        let mut rho = CostBreakdown::default();
        let mut f_c1 = 0.0;
        let mut f_all = 0.0;
        for (i, &p) in pi.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            if cluster_graph.absorbing[i] {
                f_all += p;
                if cluster_graph.states[i].tokens(places.gf) > 0 {
                    f_c1 += p;
                }
            } else {
                alive_mass += p;
                rho = rho.add(&state_rates[i].scale(p));
            }
        }
        if alive_mass > 1e-300 {
            last_rho = rho.scale(1.0 / alive_mass);
            have_rho = true;
        }
        probe_rho.push(if have_rho {
            last_rho
        } else {
            CostBreakdown::default()
        });
        if f_all > 1e-300 {
            last_phi = Some(f_c1 / f_all);
        }
        // Probes before any absorbed mass exists fall back to the marginal
        // cause mix; they carry near-zero weight in the split integral.
        probe_phi.push(last_phi.unwrap_or(fallback_phi));
    }

    let rho_grid = lerp_grid_breakdown(&probe_times, &probe_rho, &grid);
    let phi_grid = lerp_grid(&probe_times, &probe_phi, &grid);

    // --- compose ----------------------------------------------------------
    let s_sys: Vec<f64> = s_grid
        .iter()
        .map(|&s| binomial_tail_survival(s, c, k))
        .collect();
    let mttsf_sys = simpson_scalar(&s_sys, h);
    if !(mttsf_sys.is_finite() && mttsf_sys > 0.0) {
        return Err(SpnError::InvalidModel(format!(
            "composed system MTTSF {mttsf_sys} is not a positive finite time"
        )));
    }

    // Cost: each alive cluster accrues ρ(t) while fewer than K of the
    // OTHER C−1 clusters have failed (its own survival is the S factor).
    let cost_integrand: Vec<CostBreakdown> = (0..=m_intervals)
        .map(|i| {
            let s = s_grid[i];
            let f = 1.0 - s;
            let mut b_other = 0.0;
            for j in 0..k.min(c) {
                b_other += binomial_pmf(c - 1, j, f, s);
            }
            rho_grid[i].scale(f64::from(c) * s * b_other)
        })
        .collect();
    let accumulated = simpson_breakdown(&cost_integrand, h);
    let components = accumulated.scale(1.0 / mttsf_sys);

    // Failure split: the K-th failure is cluster-cause-weighted by the
    // order-statistic density C·C(C−1,K−1)·F^{K−1}·S^{C−K}·dF, integrated
    // against dF on the fine grid and renormalised (the system fails with
    // probability 1, so the raw integral only misses quadrature dust).
    let mut c1_raw = 0.0;
    let mut c2_raw = 0.0;
    for i in 0..m_intervals {
        let df = (1.0 - s_grid[i + 1]) - (1.0 - s_grid[i]);
        if df <= 0.0 {
            continue;
        }
        let w0 = f64::from(c) * binomial_pmf(c - 1, k - 1, 1.0 - s_grid[i], s_grid[i]);
        let w1 = f64::from(c) * binomial_pmf(c - 1, k - 1, 1.0 - s_grid[i + 1], s_grid[i + 1]);
        let w = 0.5 * (w0 + w1);
        let phi = 0.5 * (phi_grid[i] + phi_grid[i + 1]);
        c1_raw += w * df * phi;
        c2_raw += w * df * (1.0 - phi);
    }
    let split_total = c1_raw + c2_raw;
    let (p_c1, p_c2) = if split_total > 0.0 {
        (c1_raw / split_total, c2_raw / split_total)
    } else {
        (fallback_phi, 1.0 - fallback_phi)
    };

    // Mission survival: exact cluster survival at the requested horizons,
    // composed through the binomial tail — no quadrature involved.
    let survival = if mission_times.is_empty() {
        None
    } else {
        let (s_mission, ms) = ctmc.survival_curve_with_stats(mission_times, &topts);
        tstats.merge(&ms);
        Some(
            s_mission
                .iter()
                .map(|&s| binomial_tail_survival(s, c, k))
                .collect(),
        )
    };

    let evaluation = Evaluation {
        mttsf_seconds: mttsf_sys,
        c_total_hop_bits_per_sec: components.total(),
        cost_components: components,
        p_failure_c1: p_c1,
        p_failure_c2: p_c2,
        state_count: cluster_graph.state_count(),
        edge_count: cluster_graph.edge_count(),
        transient: Some(tstats),
    };
    Ok((evaluation, survival))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;

    fn tiny_cluster_cfg() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = 4;
        c.vote_participants = 3;
        c.max_groups = 1;
        c
    }

    fn topo(clusters: u32, k: u32) -> ClusterTopology {
        ClusterTopology {
            clusters,
            failure_threshold: k,
        }
    }

    #[test]
    fn multiset_count_matches_small_cases() {
        assert_eq!(multiset_count(3, 2), 6.0);
        assert_eq!(multiset_count(2, 3), 4.0);
        assert_eq!(multiset_count(1, 5), 1.0);
        assert!(multiset_count(1_000_000, 1000).is_infinite());
    }

    #[test]
    fn flat_lumped_matches_unlumped_flat() {
        let cfg = tiny_cluster_cfg();
        for k in [1u32, 2u32] {
            let t = topo(2, k);
            let lumped =
                evaluate_clustered_with_survival(&cfg, &t, &[], &ExploreOptions::default())
                    .unwrap();
            assert_eq!(lumped.stats.path, ClusteredPath::FlatLumped);

            let model = build_clustered_model(&cfg, &t);
            let unlumped_graph = explore(&model.net, &ExploreOptions::default()).unwrap();
            let horizon = lumped.evaluation.mttsf_seconds;
            let times = [0.25 * horizon, horizon, 2.0 * horizon];
            let (u_eval, u_surv) =
                evaluate_clustered_graph(&model, &unlumped_graph, &times).unwrap();

            // States strictly shrink: both clusters share one orbit.
            assert!(
                lumped.stats.states < unlumped_graph.state_count(),
                "lumped {} vs unlumped {}",
                lumped.stats.states,
                unlumped_graph.state_count()
            );
            assert_eq!(lumped.stats.orbit_members, 2);

            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
            assert!(
                rel(lumped.evaluation.mttsf_seconds, u_eval.mttsf_seconds) < 1e-9,
                "k={k}: MTTSF {} vs {}",
                lumped.evaluation.mttsf_seconds,
                u_eval.mttsf_seconds
            );
            assert!(
                rel(
                    lumped.evaluation.c_total_hop_bits_per_sec,
                    u_eval.c_total_hop_bits_per_sec
                ) < 1e-9
            );
            assert!((lumped.evaluation.p_failure_c1 - u_eval.p_failure_c1).abs() < 1e-9);

            let (l_eval, l_surv) = {
                let canon = clustered_canonicalizer(&model);
                let g = explore(
                    &model.net,
                    &ExploreOptions {
                        lumping: Some(canon),
                        ..ExploreOptions::default()
                    },
                )
                .unwrap();
                evaluate_clustered_graph(&model, &g, &times).unwrap()
            };
            assert!(rel(l_eval.mttsf_seconds, u_eval.mttsf_seconds) < 1e-9);
            for (a, b) in l_surv.unwrap().iter().zip(u_surv.unwrap().iter()) {
                assert!((a - b).abs() < 1e-9, "survival {a} vs {b}");
            }
        }
    }

    #[test]
    fn hierarchical_agrees_with_flat_lumped() {
        let cfg = tiny_cluster_cfg();
        let t = topo(3, 2);
        let flat =
            evaluate_clustered_with_survival(&cfg, &t, &[], &ExploreOptions::default()).unwrap();
        assert_eq!(flat.stats.path, ClusteredPath::FlatLumped);
        let m = flat.evaluation.mttsf_seconds;
        let times = [0.25 * m, m, 2.0 * m];
        let flat =
            evaluate_clustered_with_survival(&cfg, &t, &times, &ExploreOptions::default()).unwrap();

        let tight = ExploreOptions {
            max_states: 100,
            ..ExploreOptions::default()
        };
        let hier = evaluate_clustered_with_survival(&cfg, &t, &times, &tight).unwrap();
        assert_eq!(hier.stats.path, ClusteredPath::Hierarchical);
        assert!(hier.stats.states < flat.stats.states);

        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(
            rel(hier.evaluation.mttsf_seconds, flat.evaluation.mttsf_seconds) < 1e-4,
            "MTTSF hier {} vs flat {}",
            hier.evaluation.mttsf_seconds,
            flat.evaluation.mttsf_seconds
        );
        for (a, b) in hier
            .survival
            .as_ref()
            .unwrap()
            .iter()
            .zip(flat.survival.as_ref().unwrap().iter())
        {
            assert!((a - b).abs() < 1e-6, "survival hier {a} vs flat {b}");
        }
        assert!(
            rel(
                hier.evaluation.c_total_hop_bits_per_sec,
                flat.evaluation.c_total_hop_bits_per_sec
            ) < 1e-2,
            "cost hier {} vs flat {}",
            hier.evaluation.c_total_hop_bits_per_sec,
            flat.evaluation.c_total_hop_bits_per_sec
        );
        assert!(
            (hier.evaluation.p_failure_c1 - flat.evaluation.p_failure_c1).abs() < 2e-2,
            "split hier {} vs flat {}",
            hier.evaluation.p_failure_c1,
            flat.evaluation.p_failure_c1
        );
    }

    #[test]
    fn single_cluster_degenerates_to_flat_model() {
        let cfg = tiny_cluster_cfg();
        let clustered = evaluate_clustered(&cfg, &topo(1, 1)).unwrap();
        let plain = evaluate(&cfg).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(clustered.evaluation.mttsf_seconds, plain.mttsf_seconds) < 1e-9);
        assert!(
            rel(
                clustered.evaluation.c_total_hop_bits_per_sec,
                plain.c_total_hop_bits_per_sec
            ) < 1e-9
        );
        assert!((clustered.evaluation.p_failure_c1 - plain.p_failure_c1).abs() < 1e-9);
        assert_eq!(clustered.evaluation.state_count, plain.state_count);
    }

    #[test]
    fn parent_aggregate_lumps_to_threshold_plus_one() {
        let t = topo(6, 3);
        let (net, canon) = parent_aggregate_model(1000.0, &t);
        let lumped = explore(
            &net,
            &ExploreOptions {
                lumping: Some(canon),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(lumped.state_count(), 4); // 0, 1, 2 failed + absorbing

        let unlumped = explore(&net, &ExploreOptions::default()).unwrap();
        // Σ_{j≤3} C(6,j) = 1 + 6 + 15 + 20
        assert_eq!(unlumped.state_count(), 42);

        // Exponential order statistics: MTTA = Σ_{j<K} MTTSF_c / (C − j).
        let mtta = Ctmc::from_graph(&lumped)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta;
        let expect = 1000.0 * (1.0 / 6.0 + 1.0 / 5.0 + 1.0 / 4.0);
        assert!((mtta - expect).abs() < 1e-6, "{mtta} vs {expect}");
    }

    #[test]
    fn invalid_topology_is_reported() {
        let cfg = tiny_cluster_cfg();
        assert!(evaluate_clustered(&cfg, &topo(0, 1)).is_err());
        assert!(evaluate_clustered(&cfg, &topo(3, 4)).is_err());
        assert!(evaluate_clustered(&cfg, &topo(3, 0)).is_err());
    }
}
