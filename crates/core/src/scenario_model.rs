//! Scenario-modulated SPN construction and exact evaluation.
//!
//! This module widens the paper's Figure-1 net along the two scenario axes
//! of the [`scenario`] crate while leaving [`crate::model::build_model`]
//! (and its pinned structure) untouched:
//!
//! - **Attacker strategies.** `stealth` is a pure configuration transform
//!   ([`scenario_system`]) — reduced capture intensity, raised effective
//!   host false-negative probability — so it needs no structural change.
//!   `targeted` modulates the `T_CP` rate and the voting collusion
//!   probability with the adversary's foothold `U/(T+U)` via the shared
//!   closed forms in [`scenario`]. `burst` adds an attacker-mode place
//!   `AM` with an on/off exponential race (`T_BURST_ON`/`T_BURST_OFF`)
//!   multiplying the capture rate while active.
//! - **Response policies.** `quarantine-and-rejoin` adds places
//!   `QGm`/`QBm` holding convicted good/compromised nodes, with release
//!   transitions `T_REL_G` (good node rejoins), `T_REL_B` (compromised
//!   node falsely released back into the group), and `T_CONF_B`
//!   (compromised node confirmed and permanently evicted).
//!   `rekey-throttle` adds a pending-rekey queue `PRm`: convictions still
//!   remove the node but the excluding rekey is served one at a time by
//!   `T_RKSRV` at the configured maximum rate, and while pending the stale
//!   key leaks group data via `T_SLK` (a C1 failure path).
//!
//! With both axes at baseline the constructed net is the paper's net
//! (same places, transitions, rates); a test pins MTTSF equality against
//! [`crate::metrics::evaluate`].

use crate::config::SystemConfig;
use crate::cost::{cost_breakdown, gdh_rekey_hop_bits, CostBreakdown};
use crate::metrics::Evaluation;
use crate::model::{c2_holds, pfn_for, pfp_for, population, Places, Population};
use ids::voting::{
    p_false_negative_with_collusion, p_false_positive_with_collusion, CollusionModel,
};
use scenario::{AttackerStrategy, ResponsePolicy, ScenarioConfig};
use spn::ctmc::{Ctmc, TransientOptions};
use spn::error::SpnError;
use spn::model::{Marking, PlaceId, Spn, SpnBuilder, TransitionDef};
use spn::reach::ReachabilityGraph;
use spn::reward::{ImpulseReward, RateReward};
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Place handles of a scenario net: the paper's five places plus the
/// scenario-specific extras (absent for axes at baseline).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioPlaces {
    /// The paper's `Tm`/`UCm`/`DCm`/`GF`/`NG` block.
    pub base: Places,
    /// Burst attacker phase (`AM`, 1 = active).
    pub attack_mode: Option<PlaceId>,
    /// Quarantined good nodes (`QGm`).
    pub quarantine_good: Option<PlaceId>,
    /// Quarantined compromised nodes (`QBm`).
    pub quarantine_bad: Option<PlaceId>,
    /// Queued eviction rekeys (`PRm`).
    pub pending_rekeys: Option<PlaceId>,
}

impl ScenarioPlaces {
    /// Total quarantined population in `m` (0 when the policy has no
    /// quarantine).
    pub fn quarantined(&self, m: &Marking) -> u32 {
        self.quarantine_good.map_or(0, |p| m.tokens(p))
            + self.quarantine_bad.map_or(0, |p| m.tokens(p))
    }
}

/// A scenario-modulated model: net, place handles, the **effective**
/// configuration (stealth transform applied), and the scenario it encodes.
pub struct ScenarioModel {
    /// The stochastic Petri net.
    pub net: Spn,
    /// Place handles.
    pub places: ScenarioPlaces,
    /// Effective configuration (see [`scenario_system`]).
    pub config: SystemConfig,
    /// Scenario snapshot.
    pub scenario: ScenarioConfig,
}

/// The stationary part of a scenario applied to the configuration: a
/// stealth attacker captures at `rate_factor` of the baseline intensity
/// and raises the effective host false-negative probability to
/// `p1 + (1 − p1)·evasion`. Every backend (exact, SPN-sim, both DES) runs
/// on this transformed configuration, so the stealth axis is consistent
/// across them by construction.
pub fn scenario_system(cfg: &SystemConfig, sc: &ScenarioConfig) -> SystemConfig {
    let mut out = cfg.clone();
    if let AttackerStrategy::Stealth {
        rate_factor,
        evasion,
    } = sc.attacker
    {
        out.attacker.base_rate *= rate_factor;
        out.p1_host_false_negative =
            scenario::stealth_effective_p1(out.p1_host_false_negative, evasion);
    }
    out
}

/// The scenario failure predicate: C1 (`GF` token), C2 (Byzantine
/// capture), or attrition — where attrition additionally requires an empty
/// quarantine, since quarantined nodes can still rejoin.
pub fn scenario_failed(p: &ScenarioPlaces, m: &Marking) -> bool {
    let t = m.tokens(p.base.tm);
    let u = m.tokens(p.base.ucm);
    m.tokens(p.base.gf) > 0 || c2_holds(t, u) || (t + u == 0 && p.quarantined(m) == 0)
}

/// Voting false-negative probability under a targeted attacker: the
/// colluders' effective malice probability grows with the foothold.
fn pfn_targeted(cfg: &SystemConfig, pop: &Population, focus: f64) -> f64 {
    if pop.undetected == 0 {
        return 0.0;
    }
    let (good, bad) = pop.per_group_for_bad_target();
    let q = scenario::targeted_effective_collusion(
        cfg.collusion.malice_probability(),
        focus,
        pop.trusted,
        pop.undetected,
    );
    p_false_negative_with_collusion(
        good,
        bad,
        cfg.vote_participants,
        cfg.p1_host_false_negative,
        CollusionModel::Probabilistic(q),
    )
}

/// Voting false-positive probability under a targeted attacker.
fn pfp_targeted(cfg: &SystemConfig, pop: &Population, focus: f64) -> f64 {
    if pop.trusted == 0 {
        return 0.0;
    }
    let (good, bad) = pop.per_group_for_good_target();
    let q = scenario::targeted_effective_collusion(
        cfg.collusion.malice_probability(),
        focus,
        pop.trusted,
        pop.undetected,
    );
    p_false_positive_with_collusion(
        good,
        bad,
        cfg.vote_participants,
        cfg.p2_host_false_positive,
        CollusionModel::Probabilistic(q),
    )
}

/// Build the scenario-modulated SPN for a configuration.
///
/// # Panics
/// Panics if the configuration or scenario fails validation — call
/// `validate()` on both first for a recoverable error.
pub fn build_scenario_model(cfg: &SystemConfig, sc: &ScenarioConfig) -> ScenarioModel {
    cfg.validate()
        // detlint::allow(R001): documented contract — every service-path caller validates the spec first; this guards direct library misuse
        .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
    sc.validate()
        // detlint::allow(R001): documented contract — every service-path caller validates the scenario first; this guards direct library misuse
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    let cfg = scenario_system(cfg, sc);

    let mut b = SpnBuilder::new();
    let tm = b.add_place("Tm", cfg.node_count);
    let ucm = b.add_place("UCm", 0);
    let dcm = b.add_place("DCm", 0);
    let gf = b.add_place("GF", 0);
    let ng = b.add_place("NG", 1);
    let base = Places {
        tm,
        ucm,
        dcm,
        gf,
        ng,
    };
    let attack_mode = match sc.attacker {
        AttackerStrategy::Burst { .. } => Some(b.add_place("AM", 0)),
        _ => None,
    };
    let (quarantine_good, quarantine_bad) = match sc.response {
        ResponsePolicy::QuarantineRejoin { .. } => {
            (Some(b.add_place("QGm", 0)), Some(b.add_place("QBm", 0)))
        }
        _ => (None, None),
    };
    let pending_rekeys = match sc.response {
        ResponsePolicy::RekeyThrottle { .. } => Some(b.add_place("PRm", 0)),
        _ => None,
    };
    let places = ScenarioPlaces {
        base,
        attack_mode,
        quarantine_good,
        quarantine_bad,
        pending_rekeys,
    };

    let focus = sc.attacker.focus();

    // T_CP: capture at the attacker rate, modulated by the targeted
    // foothold multiplier and the burst phase.
    {
        let attacker = cfg.attacker;
        let burst = match sc.attacker {
            AttackerStrategy::Burst { multiplier, .. } => attack_mode.map(|am| (am, multiplier)),
            _ => None,
        };
        b.add_transition(
            TransitionDef::timed("T_CP", move |m| {
                let t = m.tokens(tm);
                let u = m.tokens(ucm);
                let mut r = attacker.rate(t, u);
                if focus > 0.0 {
                    r *= scenario::targeted_capture_multiplier(focus, t, u);
                }
                if let Some((am, mult)) = burst {
                    r *= scenario::burst_capture_multiplier(mult, m.tokens(am) >= 1);
                }
                r
            })
            .input(tm, 1)
            .output(ucm, 1),
        );
    }

    // T_IDS: conviction of a compromised node. The non-targeted voting
    // probabilities depend only on the target group's (good, bad) split and
    // are memoized as in the baseline net; the targeted ones also depend on
    // the global foothold, so they are computed directly. The convicted
    // node's destination is the response policy's: `DCm` for evict (with a
    // queued rekey for throttle), `QBm` for quarantine.
    {
        let cfg_c = cfg.clone();
        let n_init = cfg.node_count;
        let cache: Mutex<HashMap<(u32, u32), f64>> = Mutex::new(HashMap::new());
        let def = TransitionDef::timed("T_IDS", move |m| {
            let pop = population(&base, m);
            if pop.undetected == 0 {
                return 0.0;
            }
            let d = cfg_c.detection.rate(n_init, pop.trusted, pop.undetected);
            let pfn = if focus > 0.0 {
                pfn_targeted(&cfg_c, &pop, focus)
            } else {
                let (good, bad) = pop.per_group_for_bad_target();
                *cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry((good, bad))
                    .or_insert_with(|| pfn_for(&cfg_c, &pop))
            };
            pop.undetected as f64 * d * (1.0 - pfn)
        })
        .input(ucm, 1);
        let def = match (quarantine_bad, pending_rekeys) {
            (Some(qb), _) => def.output(qb, 1),
            (None, Some(pr)) => def.output(dcm, 1).output(pr, 1),
            (None, None) => def.output(dcm, 1),
        };
        b.add_transition(def);
    }

    // T_FA: false conviction of a trusted node (same routing).
    {
        let cfg_c = cfg.clone();
        let n_init = cfg.node_count;
        let cache: Mutex<HashMap<(u32, u32), f64>> = Mutex::new(HashMap::new());
        let def = TransitionDef::timed("T_FA", move |m| {
            let pop = population(&base, m);
            if pop.trusted == 0 {
                return 0.0;
            }
            let d = cfg_c.detection.rate(n_init, pop.trusted, pop.undetected);
            let pfp = if focus > 0.0 {
                pfp_targeted(&cfg_c, &pop, focus)
            } else {
                let (good, bad) = pop.per_group_for_good_target();
                *cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry((good, bad))
                    .or_insert_with(|| pfp_for(&cfg_c, &pop))
            };
            pop.trusted as f64 * d * pfp
        })
        .input(tm, 1);
        let def = match (quarantine_good, pending_rekeys) {
            (Some(qg), _) => def.output(qg, 1),
            (None, Some(pr)) => def.output(dcm, 1).output(pr, 1),
            (None, None) => def.output(dcm, 1),
        };
        b.add_transition(def);
    }

    // T_DRQ: data leak through an undetected compromised member (C1).
    {
        let p1 = cfg.p1_host_false_negative;
        let lambda_q = cfg.group_comm_rate;
        b.add_transition(
            TransitionDef::timed("T_DRQ", move |m| p1 * lambda_q * m.tokens(ucm) as f64)
                .input(ucm, 1)
                .output(ucm, 1)
                .output(gf, 1),
        );
    }

    // T_PAR / T_MER: group birth–death, exactly as in the baseline net.
    {
        let nu_p = cfg.partition_rate_per_group;
        let max_groups = cfg.max_groups;
        b.add_transition(
            TransitionDef::timed("T_PAR", move |m| nu_p * m.tokens(ng) as f64)
                .output(ng, 1)
                .guard(move |m| {
                    let g = m.tokens(ng);
                    g < max_groups && m.tokens(tm) + m.tokens(ucm) > g
                }),
        );
        let nu_m = cfg.merge_rate_per_group;
        b.add_transition(
            TransitionDef::timed("T_MER", move |m| {
                nu_m * (m.tokens(ng).saturating_sub(1)) as f64
            })
            .input(ng, 1)
            .guard(move |m| m.tokens(ng) >= 2),
        );
    }

    // T_RK: join/leave rekeying (cost-only), as in the baseline net.
    {
        let lambda = cfg.join_rate;
        let mu = cfg.leave_rate;
        let n_init = cfg.node_count;
        b.add_transition(TransitionDef::timed("T_RK", move |m| {
            let live = m.tokens(tm) + m.tokens(ucm);
            lambda * (n_init - live.min(n_init)) as f64 + mu * live as f64
        }));
    }

    // Burst phase race.
    if let (
        Some(am),
        AttackerStrategy::Burst {
            on_rate, off_rate, ..
        },
    ) = (attack_mode, sc.attacker)
    {
        b.add_transition(
            TransitionDef::timed_const("T_BURST_ON", on_rate)
                .output(am, 1)
                .guard(move |m| m.tokens(am) == 0),
        );
        b.add_transition(TransitionDef::timed_const("T_BURST_OFF", off_rate).input(am, 1));
    }

    // Quarantine review outcomes.
    if let (
        Some(qg),
        Some(qb),
        ResponsePolicy::QuarantineRejoin {
            release_rate,
            false_release_prob,
        },
    ) = (quarantine_good, quarantine_bad, sc.response)
    {
        b.add_transition(
            TransitionDef::timed("T_REL_G", move |m| release_rate * m.tokens(qg) as f64)
                .input(qg, 1)
                .output(tm, 1),
        );
        b.add_transition(
            TransitionDef::timed("T_REL_B", move |m| {
                release_rate * false_release_prob * m.tokens(qb) as f64
            })
            .input(qb, 1)
            .output(ucm, 1),
        );
        b.add_transition(
            TransitionDef::timed("T_CONF_B", move |m| {
                release_rate * (1.0 - false_release_prob) * m.tokens(qb) as f64
            })
            .input(qb, 1)
            .output(dcm, 1),
        );
    }

    // Throttled rekey service and the stale-key leak window.
    if let (Some(pr), ResponsePolicy::RekeyThrottle { max_rate }) = (pending_rekeys, sc.response) {
        b.add_transition(TransitionDef::timed_const("T_RKSRV", max_rate).input(pr, 1));
        let p1 = cfg.p1_host_false_negative;
        let lambda_q = cfg.group_comm_rate;
        b.add_transition(
            TransitionDef::timed("T_SLK", move |m| p1 * lambda_q * m.tokens(pr) as f64)
                .input(pr, 1)
                .output(pr, 1)
                .output(gf, 1),
        );
    }

    b.absorbing_when(move |m| scenario_failed(&places, m));

    let net = b
        .build()
        // detlint::allow(R001): structural invariant — the builder input is generated above from validated config, never from spec data
        .expect("scenario model construction is internally consistent");
    ScenarioModel {
        net,
        places,
        config: cfg,
        scenario: *sc,
    }
}

/// The response policy's rekey action costs as impulse rewards, shared by
/// the exact evaluator and the SPN-simulation backend: evict charges one
/// GDH rekey per conviction; quarantine additionally charges the rejoin
/// rekeys of released nodes (`T_REL_G`, `T_REL_B` — a confirmed eviction
/// `T_CONF_B` needs none, the node is already keyed out); throttle charges
/// one rekey per *served* queue entry (`T_RKSRV`) and nothing at
/// conviction time.
///
/// # Errors
/// Returns [`SpnError::InvalidModel`] if the model is missing one of the
/// policy's transitions.
pub fn scenario_impulses(model: &ScenarioModel) -> Result<Vec<ImpulseReward>, SpnError> {
    let names: &[&str] = match model.scenario.response {
        ResponsePolicy::Evict => &["T_IDS", "T_FA"],
        ResponsePolicy::QuarantineRejoin { .. } => &["T_IDS", "T_FA", "T_REL_G", "T_REL_B"],
        ResponsePolicy::RekeyThrottle { .. } => &["T_RKSRV"],
    };
    let places = model.places;
    names
        .iter()
        .map(|name| {
            let t = model
                .net
                .transition_by_name(name)
                .ok_or_else(|| SpnError::InvalidModel(format!("missing transition {name}")))?;
            Ok(ImpulseReward::new(format!("scenario-rekey-{name}"), t, {
                let cfg = model.config.clone();
                move |m: &Marking| {
                    let pop = population(&places.base, m);
                    gdh_rekey_hop_bits(&cfg, pop.per_group_live())
                }
            }))
        })
        .collect()
}

/// Total cost rate reward over the scenario net (quarantined nodes are
/// cryptographically outside every group and accrue no traffic).
pub fn scenario_cost_reward(model: &ScenarioModel) -> RateReward {
    let cfg = model.config.clone();
    let places = model.places;
    RateReward::new("c_total_rate", move |m| {
        cost_breakdown(&cfg, &population(&places.base, m)).total()
    })
}

/// Expected transition-firing totals over one absorption run of the exact
/// chain: `E[#T_CP]` (compromises), `E[#T_IDS]` (true detections),
/// `E[#T_FA]` (false alarms), each `Σᵢ sojournᵢ · rateᵢ` over the CTMC
/// edges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectionTotals {
    /// Expected compromises until failure.
    pub compromises: f64,
    /// Expected true detections (convictions of compromised nodes).
    pub detections: f64,
    /// Expected false alarms (convictions of trusted nodes).
    pub false_alarms: f64,
}

/// Evaluate a scenario model on an already-explored graph: the scenario
/// counterpart of [`crate::metrics::evaluate_graph`], with the response
/// policy's action costs charged as impulses and the detection-quality
/// firing totals read off the sojourn vector.
///
/// # Errors
/// Propagates solver failures.
pub fn evaluate_scenario_graph(
    model: &ScenarioModel,
    graph: &ReachabilityGraph,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>, DetectionTotals), SpnError> {
    let ctmc = Ctmc::from_graph(graph)?;
    let cfg = &model.config;
    let places = model.places;
    let absorption = ctmc.mean_time_to_absorption()?;

    let rate_components: Vec<CostBreakdown> = graph
        .states
        .iter()
        .map(|m| cost_breakdown(cfg, &population(&places.base, m)))
        .collect();

    let mut impulse_rates = vec![0.0; graph.state_count()];
    for imp in scenario_impulses(model)? {
        for (acc, v) in impulse_rates
            .iter_mut()
            .zip(imp.per_state(&model.net, graph))
        {
            *acc += v;
        }
    }

    let mttsf = absorption.mtta;
    let mut accumulated = CostBreakdown::default();
    let mut accumulated_impulse = 0.0;
    for (i, sojourn) in absorption.sojourn.iter().enumerate() {
        if *sojourn > 0.0 {
            accumulated = accumulated.add(&rate_components[i].scale(*sojourn));
            accumulated_impulse += impulse_rates[i] * sojourn;
        }
    }
    accumulated.rekey += accumulated_impulse;
    let components = if mttsf > 0.0 {
        accumulated.scale(1.0 / mttsf)
    } else {
        CostBreakdown::default()
    };

    let mut p_c1 = 0.0;
    let mut p_c2 = 0.0;
    for (i, &p) in absorption.absorption_probability.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        if graph.states[i].tokens(places.base.gf) > 0 {
            p_c1 += p;
        } else {
            p_c2 += p;
        }
    }

    // Detection-quality totals: expected firing counts from the sojourn
    // vector and the explored edge rates (only enabled transitions appear
    // as edges, so disabled-state rates contribute nothing).
    let lookup = |name: &str| {
        model
            .net
            .transition_by_name(name)
            .ok_or_else(|| SpnError::InvalidModel(format!("missing transition {name}")))
    };
    let t_cp = lookup("T_CP")?;
    let t_ids = lookup("T_IDS")?;
    let t_fa = lookup("T_FA")?;
    let mut detection = DetectionTotals::default();
    for (i, edges) in graph.edges.iter().enumerate() {
        let s = absorption.sojourn[i];
        if s <= 0.0 {
            continue;
        }
        for e in edges {
            if e.transition == t_cp {
                detection.compromises += s * e.rate;
            } else if e.transition == t_ids {
                detection.detections += s * e.rate;
            } else if e.transition == t_fa {
                detection.false_alarms += s * e.rate;
            }
        }
    }

    let mut evaluation = Evaluation {
        mttsf_seconds: mttsf,
        c_total_hop_bits_per_sec: components.total(),
        cost_components: components,
        p_failure_c1: p_c1,
        p_failure_c2: p_c2,
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        transient: None,
    };
    let survival = if mission_times.is_empty() {
        None
    } else {
        let (curve, stats) =
            ctmc.survival_curve_with_stats(mission_times, &TransientOptions::default());
        evaluation.transient = Some(stats);
        Some(curve)
    };
    Ok((evaluation, survival, detection))
}

/// One-shot scenario evaluation: build, explore, evaluate.
///
/// # Errors
/// Propagates configuration/scenario validation failures (as
/// [`SpnError::InvalidModel`]) and solver errors.
pub fn evaluate_scenario(
    cfg: &SystemConfig,
    sc: &ScenarioConfig,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>, DetectionTotals), SpnError> {
    cfg.validate().map_err(SpnError::InvalidModel)?;
    sc.validate().map_err(SpnError::InvalidModel)?;
    let model = build_scenario_model(cfg, sc);
    let graph = spn::reach::explore(&model.net, &spn::reach::ExploreOptions::default())?;
    evaluate_scenario_graph(&model, &graph, mission_times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;

    fn small(n: u32) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = 3;
        c.detection = c.detection.with_interval(120.0);
        c
    }

    fn sc(attacker: AttackerStrategy, response: ResponsePolicy) -> ScenarioConfig {
        ScenarioConfig { attacker, response }
    }

    #[test]
    fn baseline_scenario_matches_paper_net() {
        let cfg = small(12);
        let m = build_scenario_model(&cfg, &ScenarioConfig::baseline());
        assert_eq!(m.net.place_count(), 5);
        assert_eq!(m.net.transition_count(), 7);
        let (e, _, det) = evaluate_scenario(&cfg, &ScenarioConfig::baseline(), &[]).unwrap();
        let base = evaluate(&cfg).unwrap();
        assert!((e.mttsf_seconds - base.mttsf_seconds).abs() < 1e-9 * base.mttsf_seconds);
        assert!(
            (e.c_total_hop_bits_per_sec - base.c_total_hop_bits_per_sec).abs()
                < 1e-9 * base.c_total_hop_bits_per_sec
        );
        assert_eq!(e.state_count, base.state_count);
        assert!(det.compromises > 0.0 && det.detections > 0.0 && det.false_alarms > 0.0);
    }

    #[test]
    fn stealth_transform_applies_factor_and_evasion() {
        let cfg = small(12);
        let s = sc(
            AttackerStrategy::Stealth {
                rate_factor: 0.5,
                evasion: 0.3,
            },
            ResponsePolicy::Evict,
        );
        let eff = scenario_system(&cfg, &s);
        assert!((eff.attacker.base_rate - cfg.attacker.base_rate * 0.5).abs() < 1e-15);
        let expect = 0.01 + 0.99 * 0.3;
        assert!((eff.p1_host_false_negative - expect).abs() < 1e-12);
    }

    #[test]
    fn burst_adds_mode_place_and_phase_race() {
        let cfg = small(10);
        let s = sc(
            AttackerStrategy::Burst {
                on_rate: 1.0 / 3600.0,
                off_rate: 1.0 / 1800.0,
                multiplier: 4.0,
            },
            ResponsePolicy::Evict,
        );
        let m = build_scenario_model(&cfg, &s);
        assert_eq!(m.net.place_count(), 6);
        assert!(m.net.transition_by_name("T_BURST_ON").is_some());
        assert!(m.net.transition_by_name("T_BURST_OFF").is_some());
        // A bursting attacker fails the system faster than baseline.
        let (burst, _, _) = evaluate_scenario(&cfg, &s, &[]).unwrap();
        let base = evaluate(&cfg).unwrap();
        assert!(burst.mttsf_seconds < base.mttsf_seconds);
    }

    #[test]
    fn targeted_attacker_lowers_mttsf() {
        let cfg = small(12);
        let s = sc(
            AttackerStrategy::Targeted { focus: 0.8 },
            ResponsePolicy::Evict,
        );
        let (e, _, _) = evaluate_scenario(&cfg, &s, &[]).unwrap();
        let base = evaluate(&cfg).unwrap();
        assert!(e.mttsf_seconds < base.mttsf_seconds);
        // focus = 0 is exactly baseline
        let z = sc(
            AttackerStrategy::Targeted { focus: 0.0 },
            ResponsePolicy::Evict,
        );
        let (e0, _, _) = evaluate_scenario(&cfg, &z, &[]).unwrap();
        assert!((e0.mttsf_seconds - base.mttsf_seconds).abs() < 1e-9 * base.mttsf_seconds);
    }

    #[test]
    fn quarantine_conserves_population_and_can_rejoin() {
        let cfg = small(10);
        let s = sc(
            AttackerStrategy::Baseline,
            ResponsePolicy::QuarantineRejoin {
                release_rate: 1.0 / 600.0,
                false_release_prob: 0.1,
            },
        );
        let m = build_scenario_model(&cfg, &s);
        assert_eq!(m.net.place_count(), 7);
        for t in ["T_REL_G", "T_REL_B", "T_CONF_B"] {
            assert!(m.net.transition_by_name(t).is_some(), "missing {t}");
        }
        let g = spn::reach::explore(&m.net, &spn::reach::ExploreOptions::default()).unwrap();
        let qg = m.places.quarantine_good.unwrap();
        let qb = m.places.quarantine_bad.unwrap();
        let mut saw_quarantined = false;
        for st in &g.states {
            let total = st.tokens(m.places.base.tm)
                + st.tokens(m.places.base.ucm)
                + st.tokens(m.places.base.dcm)
                + st.tokens(qg)
                + st.tokens(qb);
            assert_eq!(total, 10);
            saw_quarantined |= st.tokens(qg) + st.tokens(qb) > 0;
        }
        assert!(saw_quarantined);
    }

    #[test]
    fn throttle_queue_is_bounded_and_leaks() {
        let cfg = small(10);
        let s = sc(
            AttackerStrategy::Baseline,
            ResponsePolicy::RekeyThrottle {
                max_rate: 1.0 / 300.0,
            },
        );
        let m = build_scenario_model(&cfg, &s);
        assert!(m.net.transition_by_name("T_RKSRV").is_some());
        assert!(m.net.transition_by_name("T_SLK").is_some());
        let g = spn::reach::explore(&m.net, &spn::reach::ExploreOptions::default()).unwrap();
        let pr = m.places.pending_rekeys.unwrap();
        for st in &g.states {
            assert!(st.tokens(pr) <= 10);
        }
        // The stale-key window adds a C1 path: C1 share grows vs baseline.
        let (e, _, _) = evaluate_scenario(&cfg, &s, &[]).unwrap();
        let base = evaluate(&cfg).unwrap();
        assert!(e.p_failure_c1 > base.p_failure_c1);
    }

    #[test]
    fn quarantine_with_high_false_release_is_weaker() {
        let cfg = small(10);
        let lo = sc(
            AttackerStrategy::Baseline,
            ResponsePolicy::QuarantineRejoin {
                release_rate: 1.0 / 600.0,
                false_release_prob: 0.0,
            },
        );
        let hi = sc(
            AttackerStrategy::Baseline,
            ResponsePolicy::QuarantineRejoin {
                release_rate: 1.0 / 600.0,
                false_release_prob: 0.8,
            },
        );
        let (e_lo, _, _) = evaluate_scenario(&cfg, &lo, &[]).unwrap();
        let (e_hi, _, _) = evaluate_scenario(&cfg, &hi, &[]).unwrap();
        assert!(e_hi.mttsf_seconds < e_lo.mttsf_seconds);
    }

    #[test]
    fn scenario_survival_curve_is_monotone() {
        let cfg = small(10);
        let s = sc(
            AttackerStrategy::Targeted { focus: 0.5 },
            ResponsePolicy::QuarantineRejoin {
                release_rate: 1.0 / 600.0,
                false_release_prob: 0.1,
            },
        );
        let (e, surv, _) = evaluate_scenario(&cfg, &s, &[0.0, 1.0e4, 1.0e5, 1.0e6]).unwrap();
        let surv = surv.unwrap();
        assert!((surv[0] - 1.0).abs() < 1e-9);
        for w in surv.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!(e.mttsf_seconds > 0.0);
    }

    #[test]
    fn detection_totals_track_ids_quality() {
        // With detection nearly off, expected detections until failure drop.
        let cfg = small(12);
        let slow = {
            let mut c = cfg.clone();
            c.detection = c.detection.with_interval(1.0e6);
            c
        };
        let (_, _, fast_det) = evaluate_scenario(&cfg, &ScenarioConfig::baseline(), &[]).unwrap();
        let (_, _, slow_det) = evaluate_scenario(&slow, &ScenarioConfig::baseline(), &[]).unwrap();
        assert!(slow_det.detections < fast_det.detections);
    }

    #[test]
    fn invalid_scenario_is_reported() {
        let cfg = small(10);
        let s = sc(
            AttackerStrategy::Targeted { focus: 2.0 },
            ResponsePolicy::Evict,
        );
        assert!(matches!(
            evaluate_scenario(&cfg, &s, &[]),
            Err(SpnError::InvalidModel(_))
        ));
    }
}
