//! System configuration with the paper's §5 default parameter values.

use ids::functions::{AttackerProfile, DetectionProfile, RateShape};
use ids::voting::CollusionModel;
use manet::CalibrationResult;

/// Which contributory key agreement protocol prices the rekey traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyAgreementProtocol {
    /// GDH.2 (the paper's choice): n rounds, O(n²) field elements.
    Gdh2,
    /// GDH.3: two extra stages, constant-size messages, O(n) elements.
    Gdh3,
}

/// Topology of a clustered deployment: `clusters` structurally identical,
/// independently operating copies of one [`SystemConfig`] sub-system, with
/// the overall system declared failed once `failure_threshold` clusters have
/// individually failed (a K-of-C survivability criterion).
///
/// Clusters are indistinguishable — same size, same rates — which is exactly
/// the member-permutation symmetry the lumped exact backend exploits (see
/// `gcsids::model::build_clustered_model`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterTopology {
    /// Number of identical clusters (C ≥ 1).
    pub clusters: u32,
    /// Clusters whose failure fails the whole system (1 ≤ K ≤ C).
    pub failure_threshold: u32,
}

impl ClusterTopology {
    /// Check structural sanity.
    ///
    /// # Errors
    /// Human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 {
            return Err("clusters must be positive".into());
        }
        if self.clusters > 10_000 {
            return Err("clusters too large for exact analysis".into());
        }
        if self.failure_threshold == 0 || self.failure_threshold > self.clusters {
            return Err(format!(
                "failure_threshold {} must lie in 1..={}",
                self.failure_threshold, self.clusters
            ));
        }
        Ok(())
    }
}

/// Complete parameterization of the GCS + IDS + attacker model.
///
/// Defaults follow the paper's §5: `N = 100` nodes in a 500 m-radius area,
/// join rate `λ = 1/hr` and leave rate `μ = 1/(4 hr)` per node, wireless
/// bandwidth 1 Mbps, host-IDS error probabilities `p1 = p2 = 1%`, group
/// communication rate `λq = 1/min`, base compromising rate
/// `λc = 1/(12 hr)`, `m = 5` vote participants, base index `p = 3`, and
/// both attacker and detection functions linear.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    // -- population --------------------------------------------------------
    /// Initial number of (trusted) members, the paper's `N`.
    pub node_count: u32,
    /// Per-node join rate `λ` (1/s); joins generate rekey traffic.
    pub join_rate: f64,
    /// Per-node leave rate `μ` (1/s); leaves generate rekey traffic.
    pub leave_rate: f64,
    /// Per-node group communication (data request) rate `λq` (1/s).
    pub group_comm_rate: f64,

    // -- security ----------------------------------------------------------
    /// Attacker model (shape + base rate `λc` + base index `p`).
    pub attacker: AttackerProfile,
    /// Detection model (shape + base interval `T_IDS` + base index `p`).
    pub detection: DetectionProfile,
    /// Host-IDS false-negative probability `p1`.
    pub p1_host_false_negative: f64,
    /// Host-IDS false-positive probability `p2`.
    pub p2_host_false_positive: f64,
    /// Number of vote participants `m`.
    pub vote_participants: u32,
    /// Collusion behavior of compromised vote participants (the paper
    /// assumes full collusion).
    pub collusion: CollusionModel,

    // -- group dynamics (from mobility calibration) -------------------------
    /// Per-group partition (birth) rate `ν_p` (1/s).
    pub partition_rate_per_group: f64,
    /// Per-group merge (death) rate `ν_m` (1/s).
    pub merge_rate_per_group: f64,
    /// Cap on the number of simultaneous groups tracked by the SPN.
    pub max_groups: u32,
    /// Mean member-to-member hop count (from calibration).
    pub mean_hops: f64,

    // -- radio / traffic ----------------------------------------------------
    /// Shared wireless bandwidth (bits/s), paper: 1 Mbps.
    pub bandwidth_bps: f64,
    /// Data packet size (bits).
    pub data_packet_bits: u64,
    /// Status-exchange message size (bits).
    pub status_packet_bits: u64,
    /// Vote message size (bits).
    pub vote_packet_bits: u64,
    /// Beacon size (bits).
    pub beacon_bits: u64,
    /// GDH field element size on the wire (bits).
    pub key_element_bits: u64,
    /// Key agreement protocol used for rekey pricing (paper: GDH.2).
    pub key_agreement: KeyAgreementProtocol,
    /// Optional batch-rekeying window: join/leave rekeys are aggregated
    /// into one GDH run per window (evictions always rekey immediately;
    /// companion-work extension — `None` reproduces the paper).
    pub batch_rekey_interval: Option<f64>,
    /// Status exchange period (s).
    pub status_period: f64,
    /// Beacon period (s).
    pub beacon_period: f64,
}

impl SystemConfig {
    /// The paper's §5 defaults. Group-dynamics constants default to the
    /// shipped calibration (EXPERIMENTS.md records their derivation); call
    /// [`SystemConfig::apply_calibration`] to substitute freshly measured
    /// ones.
    pub fn paper_default() -> Self {
        Self {
            node_count: 100,
            join_rate: 1.0 / 3600.0,
            leave_rate: 1.0 / (4.0 * 3600.0),
            group_comm_rate: 1.0 / 60.0,
            attacker: AttackerProfile::paper_default(),
            detection: DetectionProfile::linear(120.0),
            p1_host_false_negative: 0.01,
            p2_host_false_positive: 0.01,
            vote_participants: 5,
            collusion: CollusionModel::Full,
            // Shipped mobility calibration (random waypoint, 100 nodes,
            // 500 m disc, 250 m range; 8 × 20 000 s, master seed 2009 —
            // regenerate with `bench-harness --bin calibrate`).
            partition_rate_per_group: 1.87e-5,
            merge_rate_per_group: 8.82e-2,
            max_groups: 4,
            mean_hops: 2.07,
            bandwidth_bps: 1.0e6,
            data_packet_bits: 8 * 1024,
            status_packet_bits: 4 * 128,
            vote_packet_bits: 256,
            beacon_bits: 128,
            key_element_bits: 1024,
            key_agreement: KeyAgreementProtocol::Gdh2,
            batch_rekey_interval: None,
            status_period: 60.0,
            beacon_period: 10.0,
        }
    }

    /// Override the group-dynamics constants with a fresh mobility
    /// calibration.
    pub fn apply_calibration(&mut self, cal: &CalibrationResult) {
        self.partition_rate_per_group = cal.partition_rate_per_group;
        self.merge_rate_per_group = cal.merge_rate_per_group;
        self.mean_hops = cal.mean_hops.max(1.0);
    }

    /// Same configuration with a different base detection interval.
    pub fn with_tids(&self, t_ids: f64) -> Self {
        let mut c = self.clone();
        c.detection = c.detection.with_interval(t_ids);
        c
    }

    /// Same configuration with a different detection shape.
    pub fn with_detection_shape(&self, shape: RateShape) -> Self {
        let mut c = self.clone();
        c.detection.shape = shape;
        c
    }

    /// Same configuration with a different number of vote participants.
    pub fn with_vote_participants(&self, m: u32) -> Self {
        let mut c = self.clone();
        c.vote_participants = m;
        c
    }

    /// The paper's TIDS sweep grid (seconds).
    pub fn paper_tids_grid() -> &'static [f64] {
        &[5.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 600.0, 1200.0]
    }

    /// The paper's vote-participant sweep.
    pub fn paper_m_grid() -> &'static [u32] {
        &[3, 5, 7, 9]
    }

    /// Validate parameter consistency.
    ///
    /// # Errors
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_count == 0 {
            return Err("node_count must be positive".into());
        }
        if self.node_count > 100_000 {
            return Err("node_count too large for exact analysis".into());
        }
        for (name, v) in [
            ("join_rate", self.join_rate),
            ("leave_rate", self.leave_rate),
            ("group_comm_rate", self.group_comm_rate),
            ("partition_rate_per_group", self.partition_rate_per_group),
            ("merge_rate_per_group", self.merge_rate_per_group),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if self.attacker.base_rate <= 0.0 {
            return Err("attacker base rate must be positive".into());
        }
        if self.detection.base_interval <= 0.0 {
            return Err("detection base interval must be positive".into());
        }
        for (name, p) in [
            ("p1", self.p1_host_false_negative),
            ("p2", self.p2_host_false_positive),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0,1], got {p}"));
            }
        }
        if self.vote_participants == 0 {
            return Err("vote_participants must be positive".into());
        }
        if let CollusionModel::Probabilistic(q) = self.collusion {
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("collusion probability must lie in [0,1], got {q}"));
            }
        }
        if self.vote_participants >= self.node_count {
            return Err(format!(
                "vote_participants {} must be below node_count {}",
                self.vote_participants, self.node_count
            ));
        }
        if self.max_groups == 0 {
            return Err("max_groups must be at least 1".into());
        }
        if self.mean_hops < 1.0 {
            return Err(format!("mean_hops must be ≥ 1, got {}", self.mean_hops));
        }
        if self.bandwidth_bps <= 0.0 {
            return Err("bandwidth must be positive".into());
        }
        if self.status_period <= 0.0 || self.beacon_period <= 0.0 {
            return Err("periods must be positive".into());
        }
        if let Some(w) = self.batch_rekey_interval {
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("batch rekey window must be positive, got {w}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid_and_match_section5() {
        let c = SystemConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.node_count, 100);
        assert!((c.join_rate - 1.0 / 3600.0).abs() < 1e-15);
        assert!((c.leave_rate - 1.0 / 14_400.0).abs() < 1e-15);
        assert!((c.group_comm_rate - 1.0 / 60.0).abs() < 1e-15);
        assert!((c.attacker.base_rate - 1.0 / 43_200.0).abs() < 1e-15);
        assert_eq!(c.vote_participants, 5);
        assert_eq!(c.p1_host_false_negative, 0.01);
        assert_eq!(c.attacker.exponent, 3.0);
        assert_eq!(c.bandwidth_bps, 1.0e6);
    }

    #[test]
    fn builders_change_one_knob() {
        let c = SystemConfig::paper_default();
        let c2 = c.with_tids(480.0);
        assert_eq!(c2.detection.base_interval, 480.0);
        assert_eq!(c2.node_count, c.node_count);
        let c3 = c.with_vote_participants(9);
        assert_eq!(c3.vote_participants, 9);
        let c4 = c.with_detection_shape(RateShape::Polynomial);
        assert_eq!(c4.detection.shape, RateShape::Polynomial);
        assert_eq!(c4.detection.base_interval, c.detection.base_interval);
    }

    #[test]
    fn paper_grids_match_figures() {
        assert_eq!(SystemConfig::paper_tids_grid().len(), 9);
        assert_eq!(SystemConfig::paper_tids_grid()[0], 5.0);
        assert_eq!(*SystemConfig::paper_tids_grid().last().unwrap(), 1200.0);
        assert_eq!(SystemConfig::paper_m_grid(), &[3, 5, 7, 9]);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SystemConfig::paper_default();
        c.node_count = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.p1_host_false_negative = 1.5;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.vote_participants = 100;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.detection.base_interval = 0.0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default();
        c.mean_hops = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn apply_calibration_overrides_dynamics() {
        use manet::{CalibrationConfig, MobilityConfig};
        let cal = manet::calibrate(
            &CalibrationConfig {
                duration: 100.0,
                seeds: 1,
                mobility: MobilityConfig {
                    node_count: 15,
                    ..Default::default()
                },
                ..Default::default()
            },
            3,
        );
        let mut c = SystemConfig::paper_default();
        c.apply_calibration(&cal);
        assert!(c.mean_hops >= 1.0);
        assert_eq!(c.partition_rate_per_group, cal.partition_rate_per_group);
    }
}
