//! Analyzer self-tests: the fixture corpus pins exact finding counts per
//! rule, the JSON report encoding is byte-stable, and — the actual
//! contract gate — the real workspace tree scans clean.

use analysis::{scan_source, scan_workspace, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Scan a fixture under a synthetic path that puts `rule` in scope.
fn scan_fixture(name: &str, rule: Rule) -> analysis::Report {
    // R001 only applies inside the engine crate; the others use a neutral
    // library path (outside bench / the numerics seed grid).
    let path = match rule {
        Rule::R001 => "crates/engine/src/fixture.rs",
        _ => "crates/x/src/fixture.rs",
    };
    scan_source(path, &fixture(name))
}

#[test]
fn violating_fixtures_pin_exact_counts() {
    let expectations = [
        ("d001_violating.rs", Rule::D001, 3),
        ("d002_violating.rs", Rule::D002, 2),
        ("d003_violating.rs", Rule::D003, 2),
        ("d004_violating.rs", Rule::D004, 1),
        ("d004_violating_gather.rs", Rule::D004, 1),
        ("r001_violating.rs", Rule::R001, 3),
    ];
    for (name, rule, expected) in expectations {
        let report = scan_fixture(name, rule);
        let of_rule = report.findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(of_rule, expected, "{name}: {rule:?} finding count");
        // Every finding in a violating fixture is active (no allows).
        assert_eq!(
            report.active().filter(|f| f.rule == rule).count(),
            expected,
            "{name}: all {rule:?} findings must be unsuppressed"
        );
    }
}

#[test]
fn clean_fixtures_have_zero_findings() {
    for (name, rule) in [
        ("d001_clean.rs", Rule::D001),
        ("d002_clean.rs", Rule::D002),
        ("d003_clean.rs", Rule::D003),
        ("d004_clean.rs", Rule::D004),
        ("r001_clean.rs", Rule::R001),
    ] {
        let report = scan_fixture(name, rule);
        assert!(
            report.findings.is_empty(),
            "{name} must scan clean, got {:?}",
            report.findings
        );
        assert!(report.is_clean());
    }
}

/// The sparse-kernel carve-out is exactly one file wide: the same
/// gather-shaped parallel reduction scans clean under
/// `crates/numerics/src/sparse.rs` (where the kernels' chunked map→collect
/// structure guarantees bit-identical results) and still fires one line
/// over in the same crate.
#[test]
fn d004_sparse_kernel_carveout_is_one_file_wide() {
    let text = fixture("d004_violating_gather.rs");
    let inside = scan_source("crates/numerics/src/sparse.rs", &text);
    assert!(
        inside.findings.iter().all(|f| f.rule != Rule::D004),
        "sparse.rs is the blessed gather-kernel location"
    );
    for path in [
        "crates/numerics/src/stats.rs",
        "crates/spn/src/transient.rs",
    ] {
        let outside = scan_source(path, &text);
        assert_eq!(
            outside
                .findings
                .iter()
                .filter(|f| f.rule == Rule::D004)
                .count(),
            1,
            "{path}: gather-shaped par reduction must still fire"
        );
    }
    // The carve-out removes D004 only — wall-clock and RNG rules still
    // apply to the kernel file.
    let rules = analysis::rules::rules_for_path("crates/numerics/src/sparse.rs");
    assert!(!rules.contains(&Rule::D004));
    assert!(rules.contains(&Rule::D001));
    assert!(rules.contains(&Rule::D002));
    assert!(rules.contains(&Rule::D003));
}

#[test]
fn json_report_is_byte_stable() {
    let text = fixture("d001_violating.rs");
    let a = scan_source("crates/x/src/fixture.rs", &text).to_json();
    let b = scan_source("crates/x/src/fixture.rs", &text).to_json();
    assert_eq!(a, b, "same input must yield byte-identical JSON");
    // Structural spot checks so the format cannot silently drift.
    assert!(a.starts_with("{\"clean\":false,\"files_scanned\":1,\"findings\":["));
    assert!(a.contains("\"rule\":\"D001\""));
    assert!(a.contains("\"suppression\":null"));
    assert!(a.ends_with("\"version\":1}"));
}

#[test]
fn suppressed_findings_keep_reason_in_json() {
    let src = "// detlint::allow(D002): fixture timing probe\n\
               fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
    let report = scan_source("crates/x/src/fixture.rs", src);
    assert!(report.is_clean());
    let json = report.to_json();
    assert!(json.contains("\"suppression\":\"fixture timing probe\""));
    assert!(json.contains("\"clean\":true"));
}

#[test]
fn workspace_tree_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = scan_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "scan must cover the real tree");
    let active: Vec<_> = report.active().collect();
    assert!(
        active.is_empty(),
        "unsuppressed findings in the workspace: {active:?}"
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allows: {:?}",
        report.stale_allows
    );
    assert!(
        report.malformed_allows.is_empty(),
        "malformed allows: {:?}",
        report.malformed_allows
    );
    assert!(report.is_clean());
}
