//! D004 clean fixture: parallel map + collect keeps per-item order, and
//! the reduction happens sequentially afterwards. Expected findings: 0.
use rayon::prelude::*;

pub fn mean(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    let total: f64 = doubled.iter().sum();
    total / xs.len() as f64
}
