//! D001 fixture: iterating hash collections. Expected findings: 3.
use std::collections::{HashMap, HashSet};

pub fn summarize(counts: HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push(format!("{k}={v}"));
    }
    out
}

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub fn drain_all(mut pending: HashSet<u32>) -> Vec<u32> {
    pending.drain().collect()
}
