//! D003 fixture: RNG construction outside the seed grid. Expected
//! findings: 2.

pub fn ad_hoc_stream() -> u64 {
    let mut rng = SmallRng::seed_from_u64(42);
    rng.next_u64()
}

pub fn entropy_stream() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
