//! D002 clean fixture: durations and simulated clocks are fine; the
//! string below must not trip the lexer. Expected findings: 0.
use std::time::Duration;

pub fn tick(sim_time: f64, dt: Duration) -> f64 {
    sim_time + dt.as_secs_f64()
}

pub fn describe() -> &'static str {
    "this report never calls Instant::now() or SystemTime"
}
