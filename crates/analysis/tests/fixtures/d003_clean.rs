//! D003 clean fixture: consuming an RNG handed down by the replication
//! executor is fine — only *construction* is audited. Expected
//! findings: 0.

pub fn sample(rng: &mut impl RngCore) -> f64 {
    let raw = rng.next_u64();
    (raw >> 11) as f64 / (1u64 << 53) as f64
}
