//! D004 fixture: float reduction over a rayon parallel iterator — the
//! reduction order depends on thread scheduling. Expected findings: 1.
use rayon::prelude::*;

pub fn mean(xs: &[f64]) -> f64 {
    let total: f64 = xs
        .par_iter()
        .map(|x| x * 2.0)
        .sum();
    total / xs.len() as f64
}
