//! D004 fixture: a gather-shaped matvec whose parallel reduction sums
//! per-row dot products across threads — the *outer* reduction order
//! depends on scheduling even though each row's dot is sequential. The
//! sparse-kernel carve-out covers only `crates/numerics/src/sparse.rs`;
//! this shape anywhere else must still fire. Expected findings: 1.
use rayon::prelude::*;

pub fn gather_mass(rows: &[(usize, usize)], cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    rows.par_iter()
        .map(|&(lo, hi)| {
            cols[lo..hi]
                .iter()
                .zip(&vals[lo..hi])
                .map(|(c, v)| v * x[*c as usize])
                .sum::<f64>()
        })
        .sum()
}
