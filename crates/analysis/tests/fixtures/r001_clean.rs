//! R001 clean fixture: recoverable error handling, plus the non-panicking
//! lookalikes (`unwrap_or`, `expect_err`) that must not match. Expected
//! findings: 0.

pub fn parse_spec(text: &str) -> Result<u64, String> {
    text.trim()
        .parse()
        .map_err(|e| format!("malformed spec: {e}"))
}

pub fn parse_or_default(text: &str) -> u64 {
    text.trim().parse().unwrap_or(0)
}

pub fn must_fail(r: Result<u32, String>) -> String {
    r.expect_err("fixture value is always Err")
}
