//! D002 fixture: wall-clock reads. Expected findings: 2.

pub fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn epoch_secs() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
