//! R001 fixture: panicking constructs in the service path. Expected
//! findings: 3.

pub fn parse_spec(text: &str) -> u64 {
    let parsed: Option<u64> = text.trim().parse().ok();
    parsed.unwrap()
}

pub fn load(path: &str) -> String {
    std::fs::read_to_string(path).expect("spool file readable")
}

pub fn dispatch(kind: &str) {
    match kind {
        "exact" => {}
        other => panic!("unknown backend {other}"),
    }
}
