//! D001 clean fixture: ordered maps may be iterated; hash maps may be
//! used for lookups. Expected findings: 0.
use std::collections::{BTreeMap, HashMap};

pub fn summarize(counts: BTreeMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push(format!("{k}={v}"));
    }
    out
}

pub fn lookup(index: &HashMap<String, u64>, key: &str) -> Option<u64> {
    index.get(key).copied()
}

pub fn insert(index: &mut HashMap<String, u64>, key: String, v: u64) {
    index.insert(key, v);
}
