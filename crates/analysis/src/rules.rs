//! The determinism & robustness rules.
//!
//! Each rule is a line-level semantic check over lexically stripped
//! source (see [`crate::lexer`]): cheap enough to run on every file of
//! the workspace in milliseconds, precise enough that every finding is
//! either a real contract violation or carries an explicit, reasoned
//! `detlint::allow` annotation.

use crate::lexer::{word_positions, SourceLine};
use std::collections::BTreeSet;
use std::fmt;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet`: hash iteration order is
    /// nondeterministic across processes (`RandomState`), so any loop or
    /// iterator chain over a hash collection that feeds reports, JSON,
    /// summaries, or state interning breaks bit-identical replays.
    D001,
    /// `Instant::now` / `SystemTime` outside the bench harness: wall
    /// clocks may only feed explicitly-marked timing fields, never
    /// modeled quantities.
    D002,
    /// RNG construction outside the deterministic `child_seed` grid of
    /// `numerics::replicate`: every stream must have a stable identity.
    D003,
    /// Reductions over `rayon` parallel iterators outside the blessed
    /// fixed-chunk executor: float reduction order must not depend on
    /// thread scheduling.
    D004,
    /// `unwrap`/`expect`/`panic!` in the engine crate: the `runner serve`
    /// daemon must isolate malformed spool specs into per-spec failures,
    /// not die.
    R001,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 5] = [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::R001];

    /// Stable identifier used in reports and `detlint::allow` annotations.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::R001 => "R001",
        }
    }

    /// Parse an identifier as written inside an annotation.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description for diagnostics.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "iteration over a HashMap/HashSet (nondeterministic order)",
            Rule::D002 => "wall-clock read outside the bench harness",
            Rule::D003 => "RNG construction outside the deterministic seed grid",
            Rule::D004 => "reduction over a rayon parallel iterator",
            Rule::R001 => "unwrap/expect/panic reachable in the engine service path",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Which rules apply to a workspace-relative path (forward slashes).
///
/// The scope encodes the project's allowlists structurally:
/// * `crates/bench/` is the timing harness — wall clocks are its job.
/// * `numerics/src/replicate.rs` is the blessed fixed-chunk executor and
///   `numerics/src/rng.rs` the `child_seed` grid itself.
/// * `numerics/src/sparse.rs` hosts the deterministic gather-matvec
///   kernels: parallelism there is row-partitioned over a fixed chunk
///   grid with every dot product accumulated sequentially in stored
///   order, so per-element results are bit-identical at any thread
///   count. D004 is scoped out for that one file so kernel work is not
///   forced through allow comments; everywhere else a parallel reduction
///   still fires (see the `d004_violating_gather.rs` fixture).
/// * R001 guards the long-running service: everything under
///   `crates/engine/src/`, plus the scenario subsystem it evaluates
///   (`crates/scenario/src/` and `crates/core/src/scenario_model.rs`).
pub fn rules_for_path(path: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::D001];
    if !path.starts_with("crates/bench/") {
        rules.push(Rule::D002);
    }
    let seed_grid =
        path == "crates/numerics/src/replicate.rs" || path == "crates/numerics/src/rng.rs";
    if !seed_grid {
        rules.push(Rule::D003);
        if path != "crates/numerics/src/sparse.rs" {
            rules.push(Rule::D004);
        }
    }
    if path.starts_with("crates/engine/src/")
        || path.starts_with("crates/scenario/src/")
        || path == "crates/core/src/scenario_model.rs"
    {
        // The scenario subsystem is service-facing too: scenario specs are
        // evaluated by the long-running daemon, so a panic in scenario
        // validation or model construction kills worker threads the same
        // way an engine panic would.
        rules.push(Rule::R001);
    }
    rules
}

/// A raw (pre-suppression) finding inside one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source text of the offending line (stripped code, so no
    /// comment/string noise).
    pub snippet: String,
}

/// Scan one stripped file. `mask[i]` marks test-region lines (exempt).
pub fn scan_lines(path: &str, lines: &[SourceLine], mask: &[bool]) -> Vec<RawFinding> {
    let rules = rules_for_path(path);
    let mut findings = Vec::new();
    let hash_names = if rules.contains(&Rule::D001) {
        hash_bound_names(lines)
    } else {
        BTreeSet::new()
    };
    for (idx, line) in lines.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }
        let mut push = |rule: Rule| {
            findings.push(RawFinding {
                rule,
                line: idx + 1,
                snippet: code.trim().to_string(),
            });
        };
        if rules.contains(&Rule::D001) && iterates_hash_collection(code, &hash_names) {
            push(Rule::D001);
        }
        if rules.contains(&Rule::D002) && reads_wall_clock(code) {
            push(Rule::D002);
        }
        if rules.contains(&Rule::D003) && constructs_rng(code) {
            push(Rule::D003);
        }
        if rules.contains(&Rule::D004) && starts_parallel_reduction(lines, mask, idx) {
            push(Rule::D004);
        }
        if rules.contains(&Rule::R001) && may_panic(code) {
            push(Rule::R001);
        }
    }
    findings
}

/// Pass 1 of D001: names bound to a hash-collection type anywhere in the
/// file — `let` bindings, struct fields, and function parameters. The
/// binding itself is not a finding; only iterating it is.
fn hash_bound_names(lines: &[SourceLine]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in word_positions(code, ty) {
                if let Some(name) = binding_name(code, pos) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// The identifier a type occurrence at `pos` is bound to, if the line
/// looks like a binding: `let [mut] name … HashMap` or `name: … HashMap`.
fn binding_name(code: &str, pos: usize) -> Option<String> {
    let head = &code[..pos];
    // `let` binding (covers `let name: HashMap<…>` and
    // `let name = HashMap::new()` alike).
    if let Some(let_pos) = word_positions(head, "let").last() {
        let mut rest = head[let_pos + 3..].trim_start();
        if let Some(stripped) = rest.strip_prefix("mut ") {
            rest = stripped.trim_start();
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    // Field / parameter declaration: the identifier before the last
    // single `:` (skipping `::` path separators) ahead of the type.
    let bytes: Vec<char> = head.chars().collect();
    let mut i = bytes.len();
    while i > 0 {
        i -= 1;
        if bytes[i] == ':' {
            let double = (i > 0 && bytes[i - 1] == ':') || bytes.get(i + 1) == Some(&':');
            if double {
                if i > 0 && bytes[i - 1] == ':' {
                    i -= 1; // skip both halves of `::`
                }
                continue;
            }
            let upto: String = bytes[..i].iter().collect();
            let trimmed = upto.trim_end();
            let name: String = trimmed
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                return None;
            }
            return Some(name);
        }
    }
    None
}

/// Iterator-producing methods whose order reflects hash state.
const HASH_ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".values()",
    ".values_mut()",
    ".into_values()",
    ".keys()",
    ".into_keys()",
    ".into_iter()",
    ".drain(",
];

/// Pass 2 of D001: does this line iterate one of the hash-bound names?
fn iterates_hash_collection(code: &str, names: &BTreeSet<String>) -> bool {
    for name in names {
        for pos in word_positions(code, name) {
            let rest = &code[pos + name.len()..];
            if HASH_ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                return true;
            }
        }
        // `for x in &name {` / `for (k, v) in name {` — direct IntoIterator
        // use without a method call.
        let trimmed = code.trim_start();
        if trimmed.starts_with("for ") {
            if let Some(in_pos) = code.find(" in ") {
                let tail = &code[in_pos + 4..];
                for pos in word_positions(tail, name) {
                    let next = tail[pos + name.len()..].chars().next();
                    // A following `.` means a method call, which the
                    // method pass above already classifies.
                    if next != Some('.') {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// D002: wall-clock reads.
fn reads_wall_clock(code: &str) -> bool {
    code.contains("Instant::now") || !word_positions(code, "SystemTime").is_empty()
}

/// RNG constructors with nondeterministic or unaudited seed provenance.
const RNG_CONSTRUCTORS: [&str; 6] = [
    "seed_from_u64(",
    "from_seed(",
    "from_rng(",
    "from_entropy(",
    "thread_rng(",
    "random(",
];

/// D003: RNG construction. Seeded constructors are flagged too — the
/// annotation documents where the seed comes from (it must trace back to
/// the `child_seed` grid or a fixed spec-level master seed).
fn constructs_rng(code: &str) -> bool {
    RNG_CONSTRUCTORS.iter().any(|c| {
        let probe = &c[..c.len() - 1];
        word_positions(code, probe)
            .iter()
            .any(|&p| code[p + probe.len()..].starts_with('('))
    })
}

/// Parallel-iterator entry points.
const PAR_ITER_METHODS: [&str; 4] = [
    ".par_iter(",
    ".into_par_iter(",
    ".par_chunks(",
    ".par_bridge(",
];

/// Order-sensitive reduction adapters.
const REDUCTIONS: [&str; 4] = [".sum(", ".sum::", ".reduce(", ".fold("];

/// D004: a statement that opens a parallel iterator on `idx` and applies
/// a reduction adapter before the statement ends. The scan window runs to
/// the first `;` (or 20 lines) so an unrelated later statement is never
/// blamed.
fn starts_parallel_reduction(lines: &[SourceLine], mask: &[bool], idx: usize) -> bool {
    let code = &lines[idx].code;
    if !PAR_ITER_METHODS.iter().any(|m| code.contains(m)) {
        return false;
    }
    let mut window = String::new();
    for (j, line) in lines.iter().enumerate().skip(idx).take(20) {
        if mask.get(j).copied().unwrap_or(false) {
            break;
        }
        window.push_str(&line.code);
        window.push('\n');
        if line.code.contains(';') {
            break;
        }
    }
    REDUCTIONS.iter().any(|r| window.contains(r))
}

/// Panicking constructs (R001). `.unwrap_or*` and `.expect_err` do not
/// match — the patterns are delimiter-exact.
fn may_panic(code: &str) -> bool {
    if code.contains(".unwrap()") || code.contains(".expect(") {
        return true;
    }
    ["panic!", "unreachable!", "todo!", "unimplemented!"]
        .iter()
        .any(|m| {
            let probe = &m[..m.len() - 1];
            word_positions(code, probe)
                .iter()
                .any(|&p| code[p + probe.len()..].starts_with('!'))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{strip_source, test_region_mask};

    fn scan(path: &str, src: &str) -> Vec<RawFinding> {
        let lines = strip_source(src);
        let mask = test_region_mask(&lines);
        scan_lines(path, &lines, &mask)
    }

    #[test]
    fn d001_flags_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   m.insert(1, 2);\n\
                   let _ = m.get(&1);\n\
                   for (k, v) in &m { let _ = (k, v); }\n\
                   let _: Vec<_> = m.values().collect();\n\
                   }\n";
        let found = scan("crates/x/src/lib.rs", src);
        let lines: Vec<usize> = found.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![6, 7]);
        assert!(found.iter().all(|f| f.rule == Rule::D001));
    }

    #[test]
    fn d001_sees_struct_fields_via_self() {
        let src = "struct C { entries: std::collections::HashMap<u64, u64> }\n\
                   impl C {\n\
                   fn total(&self) -> u64 { self.entries.values().sum() }\n\
                   }\n";
        let found = scan("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn d001_ignores_btreemap() {
        let src = "fn f() {\n\
                   let mut m: std::collections::BTreeMap<u32, u32> = Default::default();\n\
                   for (k, v) in &m { let _ = (k, v); }\n\
                   }\n";
        assert!(scan("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d002_scope_and_strings() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n\
                   fn g() { let s = \"Instant::now\"; let _ = s; }\n";
        let found = scan("crates/engine/src/x.rs", src);
        assert_eq!(found.iter().filter(|f| f.rule == Rule::D002).count(), 1);
        assert!(scan("crates/bench/src/bin/x.rs", src)
            .iter()
            .all(|f| f.rule != Rule::D002));
    }

    #[test]
    fn d003_constructors() {
        let src = "fn f(seed: u64) { let _rng = SmallRng::seed_from_u64(seed); }\n\
                   fn g() { let _rng = rand::thread_rng(); }\n";
        let found = scan("crates/x/src/lib.rs", src);
        assert_eq!(found.iter().filter(|f| f.rule == Rule::D003).count(), 2);
        assert!(scan("crates/numerics/src/replicate.rs", src)
            .iter()
            .all(|f| f.rule != Rule::D003));
    }

    #[test]
    fn d004_reduction_window() {
        let bad = "fn f(xs: &[f64]) -> f64 {\n\
                   xs.par_iter()\n\
                   .map(|x| x * 2.0)\n\
                   .sum()\n\
                   }\n";
        let good = "fn f(xs: &[f64]) -> Vec<f64> {\n\
                    let v: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();\n\
                    let _total: f64 = v.iter().sum();\n\
                    v\n\
                    }\n";
        assert_eq!(scan("crates/x/src/lib.rs", bad).len(), 1);
        assert!(scan("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn r001_only_in_engine_and_exact_tokens() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   fn h(x: Result<u32, u32>) -> u32 { x.expect(\"boom\") }\n\
                   fn i(x: Result<u32, u32>) -> u32 { x.expect_err(\"ok\") }\n\
                   fn j() { panic!(\"no\") }\n";
        let found = scan("crates/engine/src/x.rs", src);
        let lines: Vec<usize> = found
            .iter()
            .filter(|f| f.rule == Rule::R001)
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![1, 3, 5]);
        assert!(scan("crates/spn/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn real(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let found = scan("crates/engine/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }
}
