//! `detlint` — a workspace-wide determinism & robustness linter.
//!
//! Every scaling step in this repository (rebuild-free templates, the
//! fixed-chunk replication executor, warm template-cache replays) rests on
//! one invariant: **runs are bit-identical** regardless of batching,
//! threading, or cache state. That contract used to live in a handful of
//! proptests; this crate makes its *structural* preconditions machine
//! checked. It is an offline, dependency-free static analyzer: a
//! hand-rolled lexer ([`lexer`]) strips comments and string contents, and
//! line-level semantic rules ([`rules`]) flag the constructs that can
//! silently break determinism or crash the long-running service:
//!
//! | rule | contract |
//! |------|----------|
//! | D001 | no iteration over `HashMap`/`HashSet` (order nondeterminism) |
//! | D002 | no wall-clock reads outside the bench harness |
//! | D003 | no RNG construction outside the `child_seed` discipline |
//! | D004 | no reductions over `rayon` parallel iterators outside the blessed executor |
//! | R001 | no `unwrap`/`expect`/`panic!` in the engine service path (incl. the scenario subsystem) |
//!
//! A finding is suppressed **only** by an explicit annotation on (or
//! immediately above) the offending line:
//!
//! ```text
//! // detlint::allow(D002): feeds the report's explicit wall_seconds timing field
//! ```
//!
//! The reason is mandatory; the tool parses and counts every suppression,
//! reports *stale* allows (annotations that no longer suppress anything)
//! and *malformed* ones (missing rule or reason), and `--deny-all` fails
//! on any of the three. CI runs `cargo run -p analysis -- --deny-all` as a
//! gate next to clippy, and the bench snapshot records the suppression
//! counts so the allow-list cannot grow without a visible diff.

pub mod lexer;
pub mod rules;

pub use rules::Rule;

use lexer::{strip_source, test_region_mask, SourceLine};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The annotation marker scanned for inside comments.
const ALLOW_MARKER: &str = "detlint::allow(";

/// One rule finding, after suppression resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed stripped-code text of the offending line.
    pub snippet: String,
    /// The written reason of the `detlint::allow` annotation suppressing
    /// this finding, or `None` when the finding is active.
    pub suppression: Option<String>,
}

/// A parsed, well-formed `detlint::allow` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative path of the file carrying the annotation.
    pub path: String,
    /// 1-based line of the comment itself.
    pub line: usize,
    /// Rule being suppressed.
    pub rule: Rule,
    /// Mandatory human-written justification.
    pub reason: String,
    /// 1-based line the annotation applies to (its own line when it
    /// trails code, otherwise the next code-bearing line).
    pub target: usize,
}

/// A `detlint::allow` the tool could not honor: unknown rule, missing
/// reason, or no code line to attach to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAllow {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// Per-rule totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleCount {
    /// Unsuppressed findings.
    pub active: usize,
    /// Findings carrying a reasoned allow.
    pub suppressed: usize,
}

/// The full result of one workspace (or fixture) scan.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding, suppressed or not, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Well-formed allows that suppressed nothing — they must be removed,
    /// or they will silently mask a future regression at that site.
    pub stale_allows: Vec<Allow>,
    /// Annotations the tool could not parse or attach.
    pub malformed_allows: Vec<MalformedAllow>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by an allow.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppression.is_none())
    }

    /// Per-rule active/suppressed totals (every rule present, even at 0).
    pub fn counts(&self) -> BTreeMap<&'static str, RuleCount> {
        let mut counts: BTreeMap<&'static str, RuleCount> = Rule::ALL
            .iter()
            .map(|r| (r.id(), RuleCount::default()))
            .collect();
        for f in &self.findings {
            let c = counts.entry(f.rule.id()).or_default();
            if f.suppression.is_some() {
                c.suppressed += 1;
            } else {
                c.active += 1;
            }
        }
        counts
    }

    /// True when the workspace honors the contract strictly: no active
    /// findings, no stale allows, no malformed allows.
    pub fn is_clean(&self) -> bool {
        self.active().next().is_none()
            && self.stale_allows.is_empty()
            && self.malformed_allows.is_empty()
    }

    /// Canonical JSON encoding: keys sorted, findings sorted, no
    /// machine-dependent content (paths are workspace-relative). Scanning
    /// the same tree twice yields byte-identical reports.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"clean\":{}", self.is_clean());
        let _ = write!(s, ",\"files_scanned\":{}", self.files_scanned);
        s.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"line\":{},\"path\":{},\"rule\":\"{}\",\"snippet\":{},\"suppression\":{}}}",
                f.line,
                json_str(&f.path),
                f.rule,
                json_str(&f.snippet),
                match &f.suppression {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
        }
        s.push_str("],\"malformed_allows\":[");
        for (i, m) in self.malformed_allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"line\":{},\"path\":{},\"problem\":{}}}",
                m.line,
                json_str(&m.path),
                json_str(&m.problem)
            );
        }
        s.push_str("],\"rules\":{");
        for (i, (id, c)) in self.counts().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{id}\":{{\"active\":{},\"suppressed\":{}}}",
                c.active, c.suppressed
            );
        }
        s.push_str("},\"stale_allows\":[");
        for (i, a) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"line\":{},\"path\":{},\"reason\":{},\"rule\":\"{}\"}}",
                a.line,
                json_str(&a.path),
                json_str(&a.reason),
                a.rule
            );
        }
        s.push_str("],\"version\":1}");
        s
    }

    /// Human-readable diagnostics.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in self.active() {
            let _ = writeln!(
                s,
                "{}: {}:{}: {}\n    {}",
                f.rule,
                f.path,
                f.line,
                f.rule.summary(),
                f.snippet
            );
        }
        for a in &self.stale_allows {
            let _ = writeln!(
                s,
                "stale-allow: {}:{}: detlint::allow({}) suppresses nothing — remove it",
                a.path, a.line, a.rule
            );
        }
        for m in &self.malformed_allows {
            let _ = writeln!(s, "malformed-allow: {}:{}: {}", m.path, m.line, m.problem);
        }
        let counts = self.counts();
        let _ = writeln!(s, "{} files scanned", self.files_scanned);
        for (id, c) in &counts {
            let _ = writeln!(
                s,
                "  {id}: {} active, {} suppressed",
                c.active, c.suppressed
            );
        }
        let _ = writeln!(
            s,
            "result: {}",
            if self.is_clean() {
                "clean"
            } else {
                "VIOLATIONS"
            }
        );
        s
    }
}

/// JSON string escaping (control characters, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extract annotations from stripped lines. Returns well-formed allows
/// (with resolved target lines) and malformed ones.
fn parse_allows(path: &str, lines: &[SourceLine]) -> (Vec<Allow>, Vec<MalformedAllow>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            // An annotation must be the comment's leading content
            // (`// detlint::allow(RULE): reason`). Mentions of the syntax
            // mid-prose — docs, this very file — are not annotations.
            let trimmed = comment.trim_start();
            if !trimmed.starts_with(ALLOW_MARKER) {
                continue;
            }
            {
                let after = &trimmed[ALLOW_MARKER.len()..];
                let Some(close) = after.find(')') else {
                    malformed.push(MalformedAllow {
                        path: path.to_string(),
                        line: idx + 1,
                        problem: "unclosed detlint::allow(…)".into(),
                    });
                    continue;
                };
                let rule_txt = after[..close].trim();
                let Some(rule) = Rule::parse(rule_txt) else {
                    malformed.push(MalformedAllow {
                        path: path.to_string(),
                        line: idx + 1,
                        problem: format!("unknown rule `{rule_txt}` in detlint::allow"),
                    });
                    continue;
                };
                let tail = after[close + 1..].trim_start();
                let reason = tail
                    .strip_prefix(':')
                    .map(str::trim)
                    .unwrap_or("")
                    .to_string();
                if reason.is_empty() {
                    malformed.push(MalformedAllow {
                        path: path.to_string(),
                        line: idx + 1,
                        problem: format!("detlint::allow({rule}) without a reason — write `: why`"),
                    });
                    continue;
                }
                // Target: this line if it carries code, else the next
                // code-bearing line.
                let target = if !lines[idx].is_code_blank() {
                    Some(idx + 1)
                } else {
                    lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .find(|(_, l)| !l.is_code_blank())
                        .map(|(j, _)| j + 1)
                };
                match target {
                    Some(target) => allows.push(Allow {
                        path: path.to_string(),
                        line: idx + 1,
                        rule,
                        reason,
                        target,
                    }),
                    None => malformed.push(MalformedAllow {
                        path: path.to_string(),
                        line: idx + 1,
                        problem: format!("detlint::allow({rule}) has no code line to attach to"),
                    }),
                }
            }
        }
    }
    (allows, malformed)
}

/// Scan one file's source text under its workspace-relative path.
/// This is the unit the fixture tests drive directly.
pub fn scan_source(path: &str, source: &str) -> Report {
    let lines = strip_source(source);
    let mask = test_region_mask(&lines);
    let raw = rules::scan_lines(path, &lines, &mask);
    let (allows, malformed_allows) = parse_allows(path, &lines);

    let mut used = vec![false; allows.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|f| {
            let suppression = allows
                .iter()
                .enumerate()
                .find(|(_, a)| a.rule == f.rule && a.target == f.line)
                .map(|(i, a)| {
                    used[i] = true;
                    a.reason.clone()
                });
            Finding {
                rule: f.rule,
                path: path.to_string(),
                line: f.line,
                snippet: f.snippet,
                suppression,
            }
        })
        .collect();
    findings.sort_by_key(|f| (f.line, f.rule));

    let stale_allows = allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    Report {
        findings,
        stale_allows,
        malformed_allows,
        files_scanned: 1,
    }
}

/// True when a workspace-relative path is out of scope for the linter:
/// build artifacts, the vendored dependency stubs (external idiom, not
/// project code), test/bench code, and the linter's own fixture corpus
/// (which is violating *by design*).
fn excluded(rel: &str) -> bool {
    if rel.starts_with("crates/analysis/tests/fixtures/") {
        return true;
    }
    rel.split('/')
        .any(|part| matches!(part, "target" | "vendor" | ".git" | "tests" | "benches"))
}

/// Recursively collect the `.rs` files in scope, sorted for deterministic
/// report order.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let Ok(rel) = path.strip_prefix(root) else {
                continue;
            };
            let rel_str = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if excluded(&rel_str) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan the whole workspace rooted at `root`.
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(path)?;
        let file_report = scan_source(&rel, &text);
        report.findings.extend(file_report.findings);
        report.stale_allows.extend(file_report.stale_allows);
        report.malformed_allows.extend(file_report.malformed_allows);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
        .stale_allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
        .malformed_allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`, falling back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; } // detlint::allow(D002): timing demo\n";
        let r = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].suppression.as_deref(), Some("timing demo"));
        assert!(r.is_clean());
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let src = "// detlint::allow(D002): timing demo\nfn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let r = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].suppression.is_some());
        assert!(r.is_clean());
    }

    #[test]
    fn allow_needs_reason_and_known_rule() {
        let src = "// detlint::allow(D002)\n// detlint::allow(D9): x\nfn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let r = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(r.malformed_allows.len(), 2);
        assert_eq!(r.active().count(), 1, "malformed allows suppress nothing");
        assert!(!r.is_clean());
    }

    #[test]
    fn stale_allow_reported() {
        let src = "// detlint::allow(D002): nothing here needs it\nfn f() {}\n";
        let r = scan_source("crates/x/src/lib.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.stale_allows.len(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress() {
        let src = "// detlint::allow(D001): wrong rule\nfn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let r = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(r.active().count(), 1);
        assert_eq!(r.stale_allows.len(), 1);
    }

    #[test]
    fn json_is_canonical_and_repeatable() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let a = scan_source("crates/x/src/lib.rs", src).to_json();
        let b = scan_source("crates/x/src/lib.rs", src).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"rule\":\"D002\""));
        assert!(a.contains("\"version\":1"));
    }
}
