//! `detlint` CLI.
//!
//! ```text
//! detlint [--root DIR] [--format text|json] [--deny-all] [--out FILE]
//! ```
//!
//! With no `--root`, the workspace is auto-discovered from the current
//! directory (nearest ancestor whose `Cargo.toml` has `[workspace]`), so
//! `cargo run -p analysis` works from anywhere inside the tree. Exit
//! status is 0 when the scan is clean (or `--deny-all` was not given) and
//! 1 when `--deny-all` found active findings, stale allows, or malformed
//! allows.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny_all: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = args.next().ok_or("--format needs `text` or `json`")?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "text" => opts.json = false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--deny-all" => opts.deny_all = true,
            "--out" => {
                let v = args.next().ok_or("--out needs a file argument")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & robustness linter\n\n\
                     usage: detlint [--root DIR] [--format text|json] [--deny-all] [--out FILE]\n\n\
                     rules:"
                );
                for rule in analysis::Rule::ALL {
                    println!("  {rule}: {}", rule.summary());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = opts.root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        analysis::find_workspace_root(&cwd)
    });
    let report = match analysis::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = &opts.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("detlint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if opts.deny_all && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
