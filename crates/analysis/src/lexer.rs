//! A hand-rolled, line-preserving Rust lexer front end.
//!
//! The semantic rules in [`crate::rules`] operate on *code text* — source
//! with comments and string/char-literal contents removed — so a pattern
//! like `.unwrap()` inside a doc comment or an error-message string never
//! produces a finding. Stripping has to understand real Rust lexical
//! structure: nested block comments, escape sequences, raw strings with
//! arbitrary `#` fences, byte strings, and the `'a`-lifetime vs `'a'`
//! char-literal ambiguity. Everything is kept line-aligned so findings
//! carry exact 1-based line numbers.

/// One source line after lexical stripping.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// The line's code with comments removed and string/char contents
    /// blanked (delimiters are kept so expression shape stays visible).
    pub code: String,
    /// Text of every comment that starts or continues on this line,
    /// without the `//` / `/* */` markers.
    pub comments: Vec<String>,
}

impl SourceLine {
    /// True when the line carries no code at all (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// Lexer state that survives across newlines.
enum Mode {
    Code,
    /// Block comment with the current nesting depth (Rust block comments
    /// nest, unlike C).
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string `r##"…"##` with the given fence length.
    RawStr(usize),
}

/// Strip `src` into per-line code text and comment text.
///
/// Guarantees: the output has exactly one entry per input line, each
/// `code` string contains no comment text and no string/char-literal
/// contents, and every removed region is replaced by at least one space so
/// adjacent tokens never fuse.
pub fn strip_source(src: &str) -> Vec<SourceLine> {
    let mut out: Vec<SourceLine> = Vec::new();
    let mut line = SourceLine::default();
    let mut mode = Mode::Code;
    let mut comment_buf = String::new();
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    let mut i = 0;

    // Helper: does a raw-string opener start at position `i`? Returns the
    // fence length (number of `#`) and the total opener length.
    let raw_open = |i: usize| -> Option<(usize, usize)> {
        let mut j = i;
        if bytes.get(j) == Some(&'b') {
            j += 1;
        }
        if bytes.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0;
        while bytes.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        (bytes.get(j) == Some(&'"')).then_some((hashes, j + 1 - i))
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            match mode {
                Mode::BlockComment(_) => {
                    line.comments.push(std::mem::take(&mut comment_buf));
                }
                Mode::Str | Mode::RawStr(_) => {
                    // String continues across the newline; the blanked
                    // contents simply resume on the next line.
                }
                Mode::Code => {}
            }
            out.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let prev_ident = i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    // Line comment: consume to end of line, keep the text.
                    let mut j = i + 2;
                    while bytes.get(j) == Some(&'/') || bytes.get(j) == Some(&'!') {
                        j += 1; // doc-comment markers
                    }
                    let start = j;
                    while j < n && bytes[j] != '\n' {
                        j += 1;
                    }
                    line.comments.push(bytes[start..j].iter().collect());
                    line.code.push(' ');
                    i = j;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    comment_buf.clear();
                    line.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if !prev_ident && raw_open(i).is_some() {
                    let (hashes, len) = raw_open(i).expect("just matched");
                    line.code.push('"');
                    mode = Mode::RawStr(hashes);
                    i += len;
                } else if c == '\'' {
                    // Lifetime or char literal? A char literal is `'x'` or
                    // `'\…'`; a lifetime is `'ident` not followed by a
                    // closing quote.
                    if bytes.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < n && bytes[j] != '\'' {
                            j += if bytes[j] == '\\' { 2 } else { 1 };
                        }
                        line.code.push_str("' '");
                        i = (j + 1).min(n);
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        line.code.push_str("' '");
                        i += 3;
                    } else {
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            Mode::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        line.comments.push(std::mem::take(&mut comment_buf));
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_buf.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character, whatever it is
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // blanked content
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        line.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !line.code.is_empty() || !line.comments.is_empty() {
        out.push(line);
    }
    out
}

/// Mark every line that belongs to a `#[cfg(test)]`-gated item (in
/// practice: the conventional `mod tests` block). Test code is exempt
/// from all rules — seeded test RNGs, `unwrap` in assertions, and hash
/// iteration in test helpers are not production nondeterminism.
pub fn test_region_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let squashed: String = lines[i]
            .code
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !squashed.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip forward to the first `{` of the gated item, then track
        // brace depth until it closes.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // A braceless gated item (e.g. `#[cfg(test)] use …;`)
                        // ends at the semicolon.
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Find every word-boundary occurrence of `needle` in `haystack` and
/// return the byte offsets where it starts. A "word boundary" means the
/// characters on both sides are not identifier characters, so `HashMap`
/// does not match inside `MyHashMapExt`.
pub fn word_positions(haystack: &str, needle: &str) -> Vec<usize> {
    let mut found = Vec::new();
    if needle.is_empty() {
        return found;
    }
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(rel) = haystack[start..].find(needle) {
        let pos = start + rel;
        let before_ok = haystack[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident(c));
        let first = needle.chars().next().expect("non-empty needle");
        let last = needle.chars().next_back().expect("non-empty needle");
        let after_ok = haystack[pos + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        // Only require boundaries on sides that are identifier-like.
        let lead = !is_ident(first) || before_ok;
        let trail = !is_ident(last) || after_ok;
        if lead && trail {
            found.push(pos);
        }
        start = pos + needle.len();
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_removed_text_kept() {
        let lines = strip_source("let x = 1; // trailing note\n// whole line\nlet y = 2;\n");
        assert_eq!(lines.len(), 3);
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("trailing"));
        assert_eq!(lines[0].comments, vec![" trailing note".to_string()]);
        assert!(lines[1].is_code_blank());
        assert_eq!(lines[1].comments, vec![" whole line".to_string()]);
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a /* outer /* inner */ still comment */ b\n");
        assert_eq!(c[0].replace(' ', ""), "ab");
    }

    #[test]
    fn strings_blanked_but_quotes_kept() {
        let c = code_of("let s = \"Instant::now() .unwrap()\"; let t = 1;\n");
        assert!(!c[0].contains("Instant"));
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = code_of("let s = r#\"has \"quotes\" and // not a comment\"#; x()\n");
        assert!(c[0].contains("x()"));
        assert!(!c[0].contains("comment"));
        let c = code_of("let s = \"escaped \\\" quote // nope\"; y()\n");
        assert!(c[0].contains("y()"));
        assert!(!c[0].contains("nope"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("let a: Vec<&'static str> = vec![]; let q = '\"'; z()\n");
        assert!(c[0].contains("'static str"));
        assert!(c[0].contains("z()"));
        let c = code_of("if c == '\\'' { f() }\n");
        assert!(c[0].contains("f()"));
    }

    #[test]
    fn multiline_string_blanked() {
        let c = code_of("let s = \"line one\nline .unwrap() two\"; g()\n");
        assert!(!c[1].contains("unwrap"));
        assert!(c[1].contains("g()"));
    }

    #[test]
    fn cfg_test_mask_covers_mod_block() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also_real() {}\n";
        let lines = strip_source(src);
        let mask = test_region_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_positions_respect_boundaries() {
        assert_eq!(
            word_positions("HashMap Hash HashMapExt", "HashMap"),
            vec![0]
        );
        assert_eq!(word_positions("a.map m map", "map"), vec![2, 8]);
        assert!(word_positions("smallmap", "map").is_empty());
    }
}
