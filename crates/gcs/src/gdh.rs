//! GDH.2 contributory group key agreement (Steiner, Tsudik, Waidner,
//! CCS '96) over a 61-bit prime field.
//!
//! The paper uses GDH for distributed rekeying because MANETs have no
//! trusted key server. GDH.2 runs in `n` stages for a group of `n` members
//! `M₁ … Mₙ`:
//!
//! * **Upflow** (stages 1 … n−1): `Mᵢ` sends `Mᵢ₊₁` a message with `i`
//!   field elements — the intermediate values
//!   `g^{x₁⋯xᵢ / xⱼ}` for `j ≤ i` and the cardinal value `g^{x₁⋯xᵢ}`.
//! * **Broadcast** (stage n): `Mₙ` raises every intermediate value to its
//!   secret and broadcasts `n−1` elements `g^{x₁⋯xₙ / xⱼ}`; member `Mⱼ`
//!   recovers the shared key `K = (g^{x₁⋯xₙ/xⱼ})^{xⱼ}`.
//!
//! We execute the protocol with real modular exponentiation (u128
//! arithmetic, Mersenne prime `p = 2⁶¹ − 1`) so the secrecy-relevant
//! behaviours (identical keys, key change on membership change) are
//! testable, and we account every message/element so the cost model can
//! charge the exact traffic. The 61-bit field is a *scale model* of the
//! 1024+-bit production field; [`RekeyCost`] therefore takes the wire
//! element size as a parameter (DESIGN.md §2.6).

use crate::membership::NodeId;
use rand::Rng;

/// The Mersenne prime 2⁶¹ − 1.
pub const PRIME: u64 = (1u64 << 61) - 1;
/// Generator of a large subgroup of `Z_p*`.
pub const GENERATOR: u64 = 3;

/// `(a * b) mod PRIME` without overflow.
pub fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
pub fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 1, "modulus must exceed 1");
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Per-rekey communication accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyCost {
    /// Unicast upflow messages (n − 1).
    pub unicast_messages: u32,
    /// Broadcast messages (1 for n ≥ 2, 0 for a singleton group).
    pub broadcast_messages: u32,
    /// Total field elements sent across all messages.
    pub total_elements: u64,
    /// Protocol rounds (sequential stages) — determines latency.
    pub rounds: u32,
}

impl RekeyCost {
    /// Analytic GDH.2 cost for a group of `n` members: upflow stage `i`
    /// (for `i = 1 … n−1`) carries `i` intermediate values plus one
    /// cardinal value (`i + 1` field elements), and the final broadcast
    /// carries `n − 1` elements.
    pub fn for_group_size(n: usize) -> Self {
        if n <= 1 {
            return Self {
                unicast_messages: 0,
                broadcast_messages: 0,
                total_elements: 0,
                rounds: 0,
            };
        }
        let n64 = n as u64;
        let upflow_elements: u64 = (1..n64).map(|i| i + 1).sum(); // Σ (i+1), i = 1..n-1
        Self {
            unicast_messages: (n - 1) as u32,
            broadcast_messages: 1,
            total_elements: upflow_elements + (n64 - 1),
            rounds: n as u32,
        }
    }

    /// Total bits on the wire with `element_bits`-bit field elements (e.g.
    /// 1024 for the deployment-grade group).
    pub fn total_bits(&self, element_bits: u64) -> u64 {
        self.total_elements * element_bits
    }

    /// Rekey completion time `Tcm` over a channel of `bandwidth_bps`,
    /// with unicasts crossing `hops` hops on average and the final
    /// broadcast flooded to `flood_transmissions` relays.
    ///
    /// # Panics
    /// Panics if `bandwidth_bps <= 0`.
    pub fn completion_time(
        &self,
        element_bits: u64,
        bandwidth_bps: f64,
        hops: f64,
        flood_transmissions: f64,
    ) -> f64 {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        let unicast_bits = (self.total_elements - self.broadcast_elements()) * element_bits;
        let bcast_bits = self.broadcast_elements() * element_bits;
        (unicast_bits as f64 * hops + bcast_bits as f64 * flood_transmissions) / bandwidth_bps
    }

    fn broadcast_elements(&self) -> u64 {
        if self.broadcast_messages == 0 {
            0
        } else {
            // final stage carries n−1 elements = unicast_messages
            self.unicast_messages as u64
        }
    }
}

/// One member's protocol state.
#[derive(Debug, Clone)]
struct Member {
    id: NodeId,
    secret: u64,
    key: Option<u64>,
}

/// An executable GDH.2 session over an ordered member list.
#[derive(Debug, Clone)]
pub struct GdhSession {
    members: Vec<Member>,
    /// Measured cost of the last `run` (messages/elements actually sent).
    cost: RekeyCost,
}

impl GdhSession {
    /// Create a session; each member draws a fresh secret exponent.
    ///
    /// # Panics
    /// Panics on an empty member list.
    pub fn new<R: Rng + ?Sized>(member_ids: &[NodeId], rng: &mut R) -> Self {
        assert!(!member_ids.is_empty(), "GDH needs at least one member");
        let members = member_ids
            .iter()
            .map(|&id| Member {
                id,
                secret: rng.gen_range(2..PRIME - 1),
                key: None,
            })
            .collect();
        Self {
            members,
            cost: RekeyCost {
                unicast_messages: 0,
                broadcast_messages: 0,
                total_elements: 0,
                rounds: 0,
            },
        }
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Execute the full protocol; every member ends up with the shared key.
    /// Returns the common key.
    pub fn run(&mut self) -> u64 {
        let n = self.members.len();
        let mut unicast = 0u32;
        let mut elements = 0u64;

        if n == 1 {
            // Degenerate group: key is g^{x₁}.
            let k = powmod(GENERATOR, self.members[0].secret, PRIME);
            self.members[0].key = Some(k);
            self.cost = RekeyCost {
                unicast_messages: 0,
                broadcast_messages: 0,
                total_elements: 0,
                rounds: 0,
            };
            return k;
        }

        // Upflow: message after member i's stage holds the intermediates
        // (one per previous member, value g^{∏x/xⱼ}) and the cardinal
        // g^{∏x}.
        let mut intermediates: Vec<u64> = Vec::with_capacity(n);
        let mut cardinal = GENERATOR; // g^{} before any exponent
        for i in 0..n - 1 {
            let xi = self.members[i].secret;
            // raise all existing intermediates by xi
            for v in intermediates.iter_mut() {
                *v = powmod(*v, xi, PRIME);
            }
            // previous cardinal (missing xi) becomes member i's intermediate
            intermediates.push(cardinal);
            cardinal = powmod(cardinal, xi, PRIME);
            // send to member i+1: intermediates + cardinal
            unicast += 1;
            elements += intermediates.len() as u64 + 1;
        }

        // Final member n−1 computes the key and broadcasts raised
        // intermediates.
        let xn = self.members[n - 1].secret;
        let key = powmod(cardinal, xn, PRIME);
        let broadcast: Vec<u64> = intermediates
            .iter()
            .map(|&v| powmod(v, xn, PRIME))
            .collect();
        elements += broadcast.len() as u64;
        self.members[n - 1].key = Some(key);
        for (j, member) in self.members[..n - 1].iter_mut().enumerate() {
            // Mⱼ raises its broadcast slot by its own secret.
            member.key = Some(powmod(broadcast[j], member.secret, PRIME));
        }

        self.cost = RekeyCost {
            unicast_messages: unicast,
            broadcast_messages: 1,
            total_elements: elements,
            rounds: n as u32,
        };
        key
    }

    /// The key member `id` derived, if the protocol ran.
    pub fn key_of(&self, id: NodeId) -> Option<u64> {
        self.members.iter().find(|m| m.id == id).and_then(|m| m.key)
    }

    /// Measured communication cost of the last run.
    pub fn measured_cost(&self) -> RekeyCost {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn powmod_reference_values() {
        assert_eq!(powmod(2, 10, 1_000_000_007), 1024);
        assert_eq!(powmod(5, 0, 97), 1);
        assert_eq!(powmod(7, 96, 97), 1); // Fermat
        assert_eq!(powmod(GENERATOR, PRIME - 1, PRIME), 1); // Fermat on the field
    }

    #[test]
    fn mulmod_no_overflow_at_large_operands() {
        let a = PRIME - 2;
        let b = PRIME - 3;
        // (p-2)(p-3) mod p = 6 mod p
        assert_eq!(mulmod(a, b, PRIME), 6);
    }

    #[test]
    fn all_members_derive_same_key() {
        for n in 1..=12usize {
            let ids: Vec<NodeId> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut s = GdhSession::new(&ids, &mut rng);
            let key = s.run();
            for &id in &ids {
                assert_eq!(s.key_of(id), Some(key), "member {id} of group size {n}");
            }
        }
    }

    #[test]
    fn keys_differ_across_sessions() {
        let ids: Vec<NodeId> = (0..5).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = GdhSession::new(&ids, &mut rng);
        let mut b = GdhSession::new(&ids, &mut rng);
        assert_ne!(a.run(), b.run());
    }

    #[test]
    fn eviction_rekey_changes_key_forward_secrecy() {
        let ids: Vec<NodeId> = (0..6).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut before = GdhSession::new(&ids, &mut rng);
        let old_key = before.run();
        // node 3 evicted → fresh session over the remaining 5
        let remaining: Vec<NodeId> = ids.iter().copied().filter(|&i| i != 3).collect();
        let mut after = GdhSession::new(&remaining, &mut rng);
        let new_key = after.run();
        assert_ne!(old_key, new_key);
        assert_eq!(after.key_of(3), None);
    }

    #[test]
    fn measured_cost_matches_analytic() {
        for n in 1..=15usize {
            let ids: Vec<NodeId> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(n as u64 + 77);
            let mut s = GdhSession::new(&ids, &mut rng);
            s.run();
            assert_eq!(s.measured_cost(), RekeyCost::for_group_size(n), "n = {n}");
        }
    }

    #[test]
    fn analytic_cost_values() {
        let c = RekeyCost::for_group_size(4);
        // upflow: 2+3+4 = 9 elements over 3 unicasts; broadcast: 3 elements
        assert_eq!(c.unicast_messages, 3);
        assert_eq!(c.broadcast_messages, 1);
        assert_eq!(c.total_elements, 12);
        assert_eq!(c.rounds, 4);
        assert_eq!(c.total_bits(1024), 12 * 1024);

        let c1 = RekeyCost::for_group_size(1);
        assert_eq!(c1.total_elements, 0);
        assert_eq!(c1.rounds, 0);

        let c2 = RekeyCost::for_group_size(2);
        assert_eq!(c2.unicast_messages, 1);
        assert_eq!(c2.total_elements, 3); // upflow (1 intermediate + cardinal) + broadcast 1
    }

    #[test]
    fn completion_time_scales_with_bandwidth() {
        let c = RekeyCost::for_group_size(8);
        let t1 = c.completion_time(1024, 1e6, 3.0, 8.0);
        let t2 = c.completion_time(1024, 2e6, 3.0, 8.0);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
        assert!(t1 > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_group_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        GdhSession::new(&[], &mut rng);
    }

    #[test]
    fn cost_grows_quadratically() {
        let c10 = RekeyCost::for_group_size(10).total_elements as f64;
        let c20 = RekeyCost::for_group_size(20).total_elements as f64;
        // Σ elements ≈ n²/2 → quadrupling expected when n doubles
        let ratio = c20 / c10;
        assert!(ratio > 3.4 && ratio < 4.4, "{ratio}");
    }
}
