//! GDH.3 contributory group key agreement (Steiner, Tsudik, Waidner,
//! CCS '96) — the communication-optimized member of the GDH family.
//!
//! Where GDH.2's upflow messages grow linearly (O(n²) total field
//! elements), GDH.3 keeps almost every message constant-size at the price
//! of two extra stages:
//!
//! 1. **Upflow** (stages 1 … n−2): member `Mᵢ` forwards the single cardinal
//!    value `g^{x₁⋯xᵢ}` to `Mᵢ₊₁` (one element per message).
//! 2. **Cardinal broadcast**: `Mₙ₋₁` broadcasts `g^{x₁⋯xₙ₋₁}` to all.
//! 3. **Response**: every `Mᵢ` (i < n) "factors out" its exponent and sends
//!    `g^{x₁⋯xₙ₋₁ / xᵢ}` to the controller `Mₙ` (n−1 unicasts, one element
//!    each).
//!
//!    Factoring out requires the exponent inverse modulo the group order;
//!    members therefore draw secrets coprime to `p − 1` and invert with the
//!    extended Euclidean algorithm.
//! 4. **Final broadcast**: `Mₙ` raises each response by `xₙ` and broadcasts
//!    the `n−1` values; `Mᵢ` recovers `K = (g^{x₁⋯xₙ/xᵢ})^{xᵢ}`.
//!
//! Total: `2(n−2) + 2(n−1) + …` ≈ `3n` field elements versus GDH.2's
//! `n²/2` — the ablation benchmark (`gdh_family`) quantifies the break-even
//! group size, and the cost model can be switched between the two (see
//! `gcsids::config::SystemConfig::key_agreement`).

use crate::gdh::{powmod, GENERATOR, PRIME};
use crate::membership::NodeId;
use rand::Rng;

/// Per-rekey accounting for GDH.3 (same shape as
/// [`crate::gdh::RekeyCost`], kept separate because the message structure
/// differs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gdh3Cost {
    /// Unicast messages (upflow + responses).
    pub unicast_messages: u32,
    /// Broadcast messages (cardinal + final).
    pub broadcast_messages: u32,
    /// Total field elements on the wire.
    pub total_elements: u64,
    /// Sequential protocol rounds.
    pub rounds: u32,
    /// Elements carried by broadcasts (needed for hop-vs-flood pricing).
    pub broadcast_elements: u64,
}

impl Gdh3Cost {
    /// Analytic GDH.3 cost for `n` members.
    pub fn for_group_size(n: usize) -> Self {
        if n <= 1 {
            return Self {
                unicast_messages: 0,
                broadcast_messages: 0,
                total_elements: 0,
                rounds: 0,
                broadcast_elements: 0,
            };
        }
        if n == 2 {
            // Degenerates to one upflow element + one final broadcast.
            return Self {
                unicast_messages: 1,
                broadcast_messages: 1,
                total_elements: 2,
                rounds: 2,
                broadcast_elements: 1,
            };
        }
        let n64 = n as u64;
        // upflow: n−2 single-element unicasts; cardinal broadcast: 1 element;
        // responses: n−1 single-element unicasts; final broadcast: n−1.
        let unicast_elements = (n64 - 2) + (n64 - 1);
        let broadcast_elements = 1 + (n64 - 1);
        Self {
            unicast_messages: (n - 2) as u32 + (n - 1) as u32,
            broadcast_messages: 2,
            total_elements: unicast_elements + broadcast_elements,
            rounds: (n - 2) as u32 + 3,
            broadcast_elements,
        }
    }

    /// Total bits on the wire with the given element width.
    pub fn total_bits(&self, element_bits: u64) -> u64 {
        self.total_elements * element_bits
    }
}

/// Extended Euclid: inverse of `a` modulo `m`, if `gcd(a, m) = 1`.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let m = m as i128;
    Some(((old_s % m + m) % m) as u64)
}

#[derive(Debug, Clone)]
struct Member {
    id: NodeId,
    secret: u64,
    key: Option<u64>,
}

/// An executable GDH.3 session.
#[derive(Debug, Clone)]
pub struct Gdh3Session {
    members: Vec<Member>,
    cost: Gdh3Cost,
}

impl Gdh3Session {
    /// Create a session; secrets are drawn coprime to `p − 1` so the
    /// response stage can invert them.
    ///
    /// # Panics
    /// Panics on an empty member list.
    pub fn new<R: Rng + ?Sized>(member_ids: &[NodeId], rng: &mut R) -> Self {
        assert!(!member_ids.is_empty(), "GDH.3 needs at least one member");
        let members = member_ids
            .iter()
            .map(|&id| {
                let secret = loop {
                    let candidate = rng.gen_range(2..PRIME - 1);
                    if mod_inverse(candidate, PRIME - 1).is_some() {
                        break candidate;
                    }
                };
                Member {
                    id,
                    secret,
                    key: None,
                }
            })
            .collect();
        Self {
            cost: Gdh3Cost {
                unicast_messages: 0,
                broadcast_messages: 0,
                total_elements: 0,
                rounds: 0,
                broadcast_elements: 0,
            },
            members,
        }
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Execute the protocol; returns the shared key.
    pub fn run(&mut self) -> u64 {
        let n = self.members.len();
        if n == 1 {
            let k = powmod(GENERATOR, self.members[0].secret, PRIME);
            self.members[0].key = Some(k);
            self.cost = Gdh3Cost::for_group_size(1);
            return k;
        }

        let mut unicast_msgs = 0u32;
        let mut elements = 0u64;

        // Stage 1 — upflow of the cardinal through M1 … M(n−1).
        let mut cardinal = GENERATOR;
        for member in &self.members[..n - 1] {
            cardinal = powmod(cardinal, member.secret, PRIME);
        }
        // n−2 forwarding messages carried one element each (the first
        // member starts from g locally).
        if n > 2 {
            unicast_msgs += (n - 2) as u32;
            elements += (n - 2) as u64;
        }

        // Stage 2 — cardinal broadcast by M(n−1) (skipped when n == 2: M1's
        // upflow message *is* the only transfer needed).
        let mut broadcasts = 0u32;
        let mut broadcast_elements = 0u64;
        if n > 2 {
            broadcasts += 1;
            elements += 1;
            broadcast_elements += 1;
        } else {
            // n == 2: M1 unicasts g^{x1} to M2.
            unicast_msgs += 1;
            elements += 1;
        }

        // Stage 3 — responses: every Mi (i < n) factors out its exponent.
        let responses: Vec<u64> = self.members[..n - 1]
            .iter()
            .map(|m| {
                let inv = mod_inverse(m.secret, PRIME - 1).expect("secrets drawn coprime to p−1");
                powmod(cardinal, inv, PRIME)
            })
            .collect();
        if n > 2 {
            unicast_msgs += (n - 1) as u32;
            elements += (n - 1) as u64;
        }

        // Stage 4 — controller Mn raises responses and broadcasts.
        let xn = self.members[n - 1].secret;
        let key = powmod(cardinal, xn, PRIME);
        let finals: Vec<u64> = responses.iter().map(|&r| powmod(r, xn, PRIME)).collect();
        broadcasts += 1;
        elements += finals.len() as u64;
        broadcast_elements += finals.len() as u64;

        self.members[n - 1].key = Some(key);
        for (i, member) in self.members[..n - 1].iter_mut().enumerate() {
            member.key = Some(powmod(finals[i], member.secret, PRIME));
        }

        self.cost = Gdh3Cost {
            unicast_messages: unicast_msgs,
            broadcast_messages: broadcasts,
            total_elements: elements,
            rounds: if n == 2 { 2 } else { (n - 2) as u32 + 3 },
            broadcast_elements,
        };
        key
    }

    /// The key member `id` derived, if the protocol ran.
    pub fn key_of(&self, id: NodeId) -> Option<u64> {
        self.members.iter().find(|m| m.id == id).and_then(|m| m.key)
    }

    /// Measured communication cost of the last run.
    pub fn measured_cost(&self) -> Gdh3Cost {
        self.cost
    }
}

/// Sanity identity: `(g^x)^(x⁻¹ mod p−1) = g` (Fermat), the algebraic fact
/// stage 3 relies on.
pub fn factor_out_roundtrips(x: u64) -> bool {
    match mod_inverse(x, PRIME - 1) {
        None => false,
        Some(inv) => {
            let up = powmod(GENERATOR, x, PRIME);
            powmod(up, inv, PRIME) == GENERATOR
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdh::mulmod;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_inverse_basic() {
        assert_eq!(mod_inverse(3, 7), Some(5)); // 3·5 = 15 ≡ 1 (mod 7)
        assert_eq!(mod_inverse(2, 4), None); // not coprime
                                             // 12345 = 3·5·823 shares factors with p−1 = 2·3²·5²·7·…
        assert_eq!(mod_inverse(12345, PRIME - 1), None);
        // 12347 is prime and not a factor of p−1
        let inv = mod_inverse(12347, PRIME - 1).unwrap();
        assert_eq!(mulmod(12347, inv, PRIME - 1), 1);
    }

    #[test]
    fn factor_out_identity_holds() {
        for x in [5u64, 7, 101, 999_983] {
            if mod_inverse(x, PRIME - 1).is_some() {
                assert!(factor_out_roundtrips(x), "x = {x}");
            }
        }
    }

    #[test]
    fn all_members_derive_same_key() {
        for n in 1..=12usize {
            let ids: Vec<NodeId> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(n as u64 + 31);
            let mut s = Gdh3Session::new(&ids, &mut rng);
            let key = s.run();
            for &id in &ids {
                assert_eq!(s.key_of(id), Some(key), "member {id} of size-{n} group");
            }
        }
    }

    #[test]
    fn measured_cost_matches_analytic() {
        for n in 1..=15usize {
            let ids: Vec<NodeId> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut s = Gdh3Session::new(&ids, &mut rng);
            s.run();
            assert_eq!(s.measured_cost(), Gdh3Cost::for_group_size(n), "n = {n}");
        }
    }

    #[test]
    fn linear_element_growth() {
        let c10 = Gdh3Cost::for_group_size(10).total_elements as f64;
        let c20 = Gdh3Cost::for_group_size(20).total_elements as f64;
        // linear: doubling n roughly doubles the elements
        let ratio = c20 / c10;
        assert!(ratio > 1.8 && ratio < 2.3, "{ratio}");
    }

    #[test]
    fn cheaper_than_gdh2_beyond_small_groups() {
        use crate::gdh::RekeyCost;
        for n in [6usize, 10, 50, 100] {
            let g2 = RekeyCost::for_group_size(n).total_elements;
            let g3 = Gdh3Cost::for_group_size(n).total_elements;
            assert!(g3 < g2, "n = {n}: GDH.3 {g3} !< GDH.2 {g2}");
        }
    }

    #[test]
    fn key_changes_on_membership_change() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = Gdh3Session::new(&[1, 2, 3, 4, 5], &mut rng);
        let k1 = a.run();
        let mut b = Gdh3Session::new(&[1, 2, 3, 4], &mut rng);
        let k2 = b.run();
        assert_ne!(k1, k2);
    }

    #[test]
    fn gdh2_and_gdh3_agree_on_single_member() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = Gdh3Session::new(&[9], &mut rng);
        let k = s.run();
        assert_eq!(s.key_of(9), Some(k));
        assert_eq!(s.measured_cost().total_elements, 0);
    }

    #[test]
    #[should_panic]
    fn empty_group_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Gdh3Session::new(&[], &mut rng);
    }
}
