//! View-synchronous broadcast channel.
//!
//! The paper assumes the GCS "maintains view synchrony (VS) by which
//! messages are guaranteed to be delivered reliably and in order". This
//! module provides an executable model of that guarantee for the
//! discrete-event simulator: messages broadcast in a view are delivered to
//! every member of that view, in per-sender FIFO order, and all messages of
//! a view are flushed before the next view is installed (view atomicity).

use crate::membership::{GroupView, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// A broadcast message tagged with its originating view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewMessage<T> {
    /// View in which the message was sent.
    pub view_id: u64,
    /// Sending member.
    pub sender: NodeId,
    /// Per-sender sequence number within the view.
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

/// A view-synchronous channel: broadcasts buffer within the current view
/// and are delivered atomically to all current members at flush/view-change
/// time.
#[derive(Debug, Clone)]
pub struct ViewSyncChannel<T> {
    view: GroupView,
    pending: Vec<ViewMessage<T>>,
    next_seq: BTreeMap<NodeId, u64>,
    delivered: BTreeMap<NodeId, VecDeque<ViewMessage<T>>>,
}

impl<T: Clone> ViewSyncChannel<T> {
    /// Open the channel in an initial view.
    pub fn new(view: GroupView) -> Self {
        let delivered = view.members.iter().map(|&m| (m, VecDeque::new())).collect();
        Self {
            view,
            pending: Vec::new(),
            next_seq: BTreeMap::new(),
            delivered,
        }
    }

    /// Current view.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// Broadcast `payload` from `sender` within the current view.
    ///
    /// # Panics
    /// Panics if `sender` is not a member of the current view.
    pub fn broadcast(&mut self, sender: NodeId, payload: T) {
        assert!(
            self.view.contains(sender),
            "sender {sender} not in view {}",
            self.view.view_id
        );
        let seq = self.next_seq.entry(sender).or_insert(0);
        self.pending.push(ViewMessage {
            view_id: self.view.view_id,
            sender,
            seq: *seq,
            payload,
        });
        *seq += 1;
    }

    /// Deliver all pending messages of the current view to every member's
    /// inbox (view-atomic delivery). Returns the number of deliveries
    /// (messages × recipients).
    pub fn flush(&mut self) -> usize {
        let mut deliveries = 0;
        for msg in self.pending.drain(..) {
            for &m in &self.view.members {
                self.delivered
                    .get_mut(&m)
                    .expect("member inbox exists")
                    .push_back(msg.clone());
                deliveries += 1;
            }
        }
        deliveries
    }

    /// Install a new view. Pending messages of the old view are flushed
    /// first (view synchrony: no message crosses a view boundary). Inboxes
    /// are created for joiners; leavers keep their already-delivered
    /// messages but receive nothing further.
    pub fn install_view(&mut self, next: GroupView) {
        assert!(next.view_id > self.view.view_id, "view ids must increase");
        self.flush();
        for &m in &next.members {
            self.delivered.entry(m).or_default();
        }
        self.next_seq.clear();
        self.view = next;
    }

    /// Drain the inbox of `node`.
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<ViewMessage<T>> {
        self.delivered
            .get_mut(&node)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Messages waiting in the channel (sent, not yet flushed).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipEvent;

    fn channel() -> ViewSyncChannel<&'static str> {
        ViewSyncChannel::new(GroupView::initial([1, 2, 3]))
    }

    #[test]
    fn broadcast_reaches_all_members() {
        let mut ch = channel();
        ch.broadcast(1, "hello");
        assert_eq!(ch.pending_count(), 1);
        let n = ch.flush();
        assert_eq!(n, 3);
        for m in [1, 2, 3] {
            let inbox = ch.take_inbox(m);
            assert_eq!(inbox.len(), 1);
            assert_eq!(inbox[0].payload, "hello");
            assert_eq!(inbox[0].view_id, 0);
        }
    }

    #[test]
    fn per_sender_fifo_order() {
        let mut ch = channel();
        ch.broadcast(1, "a");
        ch.broadcast(1, "b");
        ch.broadcast(2, "x");
        ch.broadcast(1, "c");
        ch.flush();
        let inbox = ch.take_inbox(3);
        let from_1: Vec<&str> = inbox
            .iter()
            .filter(|m| m.sender == 1)
            .map(|m| m.payload)
            .collect();
        assert_eq!(from_1, vec!["a", "b", "c"]);
        let seqs: Vec<u64> = inbox
            .iter()
            .filter(|m| m.sender == 1)
            .map(|m| m.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn view_change_flushes_first() {
        let mut ch = channel();
        ch.broadcast(2, "last-in-view-0");
        let next = ch.view().apply(&MembershipEvent::Join(4));
        ch.install_view(next);
        // message was delivered to the OLD view's members only
        assert_eq!(ch.take_inbox(1).len(), 1);
        assert!(ch.take_inbox(4).is_empty());
        // new member can now receive
        ch.broadcast(4, "hi");
        ch.flush();
        assert_eq!(ch.take_inbox(1)[0].view_id, 1);
    }

    #[test]
    fn no_message_crosses_view_boundary() {
        let mut ch = channel();
        ch.broadcast(1, "v0");
        let next = ch.view().apply(&MembershipEvent::Evict(3));
        ch.install_view(next);
        ch.broadcast(1, "v1");
        ch.flush();
        // node 3 got the v0 message (it was a member then) but not v1
        let inbox3 = ch.take_inbox(3);
        assert_eq!(inbox3.len(), 1);
        assert_eq!(inbox3[0].view_id, 0);
        // remaining members see both, correctly tagged
        let inbox2 = ch.take_inbox(2);
        assert_eq!(inbox2.len(), 2);
        assert_eq!(inbox2[0].view_id, 0);
        assert_eq!(inbox2[1].view_id, 1);
    }

    #[test]
    #[should_panic]
    fn nonmember_cannot_broadcast() {
        let mut ch = channel();
        ch.broadcast(9, "nope");
    }

    #[test]
    #[should_panic]
    fn view_ids_must_increase() {
        let mut ch = channel();
        ch.install_view(GroupView::initial([1]));
    }

    #[test]
    fn seq_resets_per_view() {
        let mut ch = channel();
        ch.broadcast(1, "a");
        let next = ch.view().apply(&MembershipEvent::Join(4));
        ch.install_view(next);
        ch.broadcast(1, "b");
        ch.flush();
        let inbox = ch.take_inbox(2);
        // second message has seq 0 again in the new view
        let v1msg = inbox.iter().find(|m| m.view_id == 1).unwrap();
        assert_eq!(v1msg.seq, 0);
    }
}
