//! Rekey scheduling and accounting.
//!
//! Every membership change must refresh the group key (forward + backward
//! secrecy). The baseline policy rekeys immediately on each event — this is
//! what the paper models (`T_RK` fires per join/leave/eviction with rate
//! `1/Tcm`). As an extension (the authors' companion work), a *batch*
//! policy aggregates events within a rekey interval and performs a single
//! GDH run; the scheduler here supports both so the ablation bench can
//! compare their traffic.

use crate::gdh::{GdhSession, RekeyCost};
use crate::membership::{GroupView, MembershipEvent, ViewHistory};
use rand::Rng;

/// When to run the GDH agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RekeyPolicy {
    /// One GDH run per membership event (the paper's model).
    Immediate,
    /// Aggregate events and rekey every `interval` seconds (companion-work
    /// extension; evictions still trigger an immediate rekey because a
    /// compromised member must not hold a valid key).
    Batch {
        /// Batch window in seconds.
        interval: f64,
    },
}

/// Cumulative rekey statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RekeyStats {
    /// GDH runs performed.
    pub runs: u64,
    /// Membership events processed.
    pub events: u64,
    /// Total field elements transmitted.
    pub total_elements: u64,
    /// Total unicast + broadcast messages.
    pub total_messages: u64,
}

/// Tracks views, keys, and rekey traffic under a [`RekeyPolicy`].
#[derive(Debug)]
pub struct RekeyScheduler {
    history: ViewHistory,
    policy: RekeyPolicy,
    stats: RekeyStats,
    current_key: Option<u64>,
    /// Events accumulated since the last batch rekey.
    pending_events: u64,
    /// Simulation-time of the last batch rekey.
    last_batch_rekey: f64,
}

impl RekeyScheduler {
    /// Start with an initial view and run the first key agreement.
    pub fn new<R: Rng + ?Sized>(view: GroupView, policy: RekeyPolicy, rng: &mut R) -> Self {
        let mut s = Self {
            history: ViewHistory::new(view),
            policy,
            stats: RekeyStats::default(),
            current_key: None,
            pending_events: 0,
            last_batch_rekey: 0.0,
        };
        s.run_gdh(rng);
        s
    }

    /// Current group view.
    pub fn view(&self) -> &GroupView {
        self.history.current()
    }

    /// Current group key (None only for an empty group).
    pub fn key(&self) -> Option<u64> {
        self.current_key
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &RekeyStats {
        &self.stats
    }

    /// Events waiting for the next batch rekey.
    pub fn pending_events(&self) -> u64 {
        self.pending_events
    }

    fn run_gdh<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let members = self.view().ordered_members();
        if members.is_empty() {
            self.current_key = None;
            return;
        }
        let mut session = GdhSession::new(&members, rng);
        self.current_key = Some(session.run());
        let cost = session.measured_cost();
        self.stats.runs += 1;
        self.stats.total_elements += cost.total_elements;
        self.stats.total_messages += cost.unicast_messages as u64 + cost.broadcast_messages as u64;
        self.pending_events = 0;
    }

    /// Process a membership event at simulation time `now`. Returns `true`
    /// when a GDH rekey ran.
    pub fn on_event<R: Rng + ?Sized>(
        &mut self,
        now: f64,
        event: MembershipEvent,
        rng: &mut R,
    ) -> bool {
        let is_eviction = matches!(event, MembershipEvent::Evict(_));
        self.history.install(event);
        self.stats.events += 1;
        self.pending_events += 1;
        match self.policy {
            RekeyPolicy::Immediate => {
                self.run_gdh(rng);
                true
            }
            RekeyPolicy::Batch { interval } => {
                if is_eviction || now - self.last_batch_rekey >= interval {
                    self.last_batch_rekey = now;
                    self.run_gdh(rng);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Batch-policy timer tick: rekey if the window expired and events are
    /// pending. Returns `true` when a rekey ran.
    pub fn on_tick<R: Rng + ?Sized>(&mut self, now: f64, rng: &mut R) -> bool {
        if let RekeyPolicy::Batch { interval } = self.policy {
            if self.pending_events > 0 && now - self.last_batch_rekey >= interval {
                self.last_batch_rekey = now;
                self.run_gdh(rng);
                return true;
            }
        }
        false
    }

    /// Analytic per-event rekey cost at the current group size (used by the
    /// SPN cost model).
    pub fn analytic_event_cost(&self) -> RekeyCost {
        RekeyCost::for_group_size(self.view().size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn initial_agreement_runs() {
        let mut r = rng();
        let s = RekeyScheduler::new(
            GroupView::initial([1, 2, 3]),
            RekeyPolicy::Immediate,
            &mut r,
        );
        assert!(s.key().is_some());
        assert_eq!(s.stats().runs, 1);
    }

    #[test]
    fn immediate_policy_rekeys_every_event() {
        let mut r = rng();
        let mut s = RekeyScheduler::new(
            GroupView::initial([1, 2, 3]),
            RekeyPolicy::Immediate,
            &mut r,
        );
        let k0 = s.key();
        assert!(s.on_event(1.0, MembershipEvent::Join(4), &mut r));
        let k1 = s.key();
        assert!(s.on_event(2.0, MembershipEvent::Leave(1), &mut r));
        let k2 = s.key();
        assert_ne!(k0, k1);
        assert_ne!(k1, k2);
        assert_eq!(s.stats().runs, 3);
        assert_eq!(s.stats().events, 2);
        assert_eq!(s.view().ordered_members(), vec![2, 3, 4]);
    }

    #[test]
    fn batch_policy_defers_joins_and_leaves() {
        let mut r = rng();
        let mut s = RekeyScheduler::new(
            GroupView::initial([1, 2, 3]),
            RekeyPolicy::Batch { interval: 10.0 },
            &mut r,
        );
        assert!(!s.on_event(1.0, MembershipEvent::Join(4), &mut r));
        assert!(!s.on_event(2.0, MembershipEvent::Join(5), &mut r));
        assert_eq!(s.pending_events(), 2);
        // window expires
        assert!(s.on_tick(12.0, &mut r));
        assert_eq!(s.pending_events(), 0);
        assert_eq!(s.stats().runs, 2); // initial + batch
    }

    #[test]
    fn batch_policy_evictions_rekey_immediately() {
        let mut r = rng();
        let mut s = RekeyScheduler::new(
            GroupView::initial([1, 2, 3]),
            RekeyPolicy::Batch { interval: 1e9 },
            &mut r,
        );
        let k0 = s.key();
        assert!(s.on_event(1.0, MembershipEvent::Evict(2), &mut r));
        assert_ne!(s.key(), k0);
        assert!(!s.view().contains(2));
    }

    #[test]
    fn batch_traffic_less_than_immediate() {
        let events: Vec<MembershipEvent> = (10..30).map(MembershipEvent::Join).collect();
        let run = |policy| {
            let mut r = rng();
            let mut s = RekeyScheduler::new(GroupView::initial([1, 2, 3]), policy, &mut r);
            for (i, e) in events.iter().cloned().enumerate() {
                s.on_event(i as f64, e, &mut r);
            }
            s.on_tick(1e9, &mut r);
            s.stats().clone()
        };
        let imm = run(RekeyPolicy::Immediate);
        let batch = run(RekeyPolicy::Batch { interval: 5.0 });
        assert!(batch.runs < imm.runs);
        assert!(batch.total_elements < imm.total_elements);
        // both end at the same view size
    }

    #[test]
    fn empty_group_after_all_leave() {
        let mut r = rng();
        let mut s = RekeyScheduler::new(GroupView::initial([1]), RekeyPolicy::Immediate, &mut r);
        s.on_event(0.0, MembershipEvent::Leave(1), &mut r);
        assert_eq!(s.key(), None);
        assert_eq!(s.view().size(), 0);
    }

    #[test]
    fn analytic_cost_tracks_view_size() {
        let mut r = rng();
        let s = RekeyScheduler::new(
            GroupView::initial([1, 2, 3, 4]),
            RekeyPolicy::Immediate,
            &mut r,
        );
        assert_eq!(s.analytic_event_cost(), RekeyCost::for_group_size(4));
    }
}
