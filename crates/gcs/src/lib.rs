//! Group communication system (GCS) substrate.
//!
//! The paper's GCS assumes: reliable view-synchronous delivery, a shared
//! symmetric *group key* agreed upon with a contributory key agreement
//! protocol (GDH [Steiner–Tsudik–Waidner '96]) because MANETs have no
//! trusted key server, and rekeying on every join/leave/eviction to keep
//! forward and backward secrecy. This crate implements those substrates:
//!
//! * [`membership`] — group views and membership events;
//! * [`vsync`] — a view-synchronous broadcast channel (sender order
//!   preserved, view-atomic delivery);
//! * [`gdh`] — GDH.2 group Diffie–Hellman over a 61-bit prime field with
//!   per-stage message accounting;
//! * [`gdh3`] — the communication-optimized GDH.3 variant (constant-size
//!   messages, O(n) total elements) with exponent-inverse factoring;
//! * [`rekey`] — rekey scheduling (immediate or batched) and the
//!   communication-cost/latency accounting (`Tcm`) consumed by the SPN's
//!   `T_RK` rate and the Ĉrekey cost component.

pub mod gdh;
pub mod gdh3;
pub mod membership;
pub mod rekey;
pub mod vsync;

pub use gdh::{GdhSession, RekeyCost};
pub use gdh3::{Gdh3Cost, Gdh3Session};
pub use membership::{GroupView, MembershipEvent, NodeId};
pub use rekey::{RekeyPolicy, RekeyScheduler, RekeyStats};
pub use vsync::ViewSyncChannel;
