//! Group views and membership events.
//!
//! A *view* is the set of members a node believes is currently in its group,
//! tagged with a monotonically increasing view id. Every membership change
//! (join, voluntary leave, IDS eviction, partition, merge) installs a new
//! view; the rekey layer hangs a fresh group key off each installed view.

use std::collections::BTreeSet;

/// Node identifier.
pub type NodeId = u32;

/// Why a view changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A node joined the group.
    Join(NodeId),
    /// A node left voluntarily.
    Leave(NodeId),
    /// A node was evicted by the IDS (cannot rejoin).
    Evict(NodeId),
    /// The group partitioned; this view kept the listed members.
    Partition(Vec<NodeId>),
    /// Another group's members merged into this view.
    Merge(Vec<NodeId>),
}

/// An installed group view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// Monotonic view identifier.
    pub view_id: u64,
    /// Current members, ordered (GDH stages follow this order).
    pub members: BTreeSet<NodeId>,
}

impl GroupView {
    /// Initial view (id 0) over the given members.
    pub fn initial(members: impl IntoIterator<Item = NodeId>) -> Self {
        Self {
            view_id: 0,
            members: members.into_iter().collect(),
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// True when `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Members in GDH stage order.
    pub fn ordered_members(&self) -> Vec<NodeId> {
        self.members.iter().copied().collect()
    }

    /// Apply a membership event, producing the next view.
    ///
    /// # Panics
    /// Panics on inconsistent events (joining an existing member, removing
    /// a non-member) — these indicate protocol bugs upstream.
    pub fn apply(&self, event: &MembershipEvent) -> GroupView {
        let mut members = self.members.clone();
        match event {
            MembershipEvent::Join(n) => {
                assert!(members.insert(*n), "node {n} joined twice");
            }
            MembershipEvent::Leave(n) | MembershipEvent::Evict(n) => {
                assert!(members.remove(n), "node {n} not a member");
            }
            MembershipEvent::Partition(kept) => {
                let keep: BTreeSet<NodeId> = kept.iter().copied().collect();
                assert!(
                    keep.is_subset(&members),
                    "partition retained nodes outside the view"
                );
                members = keep;
            }
            MembershipEvent::Merge(incoming) => {
                for n in incoming {
                    assert!(members.insert(*n), "merge brought existing member {n}");
                }
            }
        }
        GroupView {
            view_id: self.view_id + 1,
            members,
        }
    }
}

/// A linear history of views with their triggering events.
#[derive(Debug, Clone, Default)]
pub struct ViewHistory {
    views: Vec<(GroupView, Option<MembershipEvent>)>,
}

impl ViewHistory {
    /// Start a history at the initial view.
    pub fn new(initial: GroupView) -> Self {
        Self {
            views: vec![(initial, None)],
        }
    }

    /// Current view.
    pub fn current(&self) -> &GroupView {
        &self.views.last().expect("history is never empty").0
    }

    /// Apply an event and install the successor view; returns a reference
    /// to it.
    pub fn install(&mut self, event: MembershipEvent) -> &GroupView {
        let next = self.current().apply(&event);
        self.views.push((next, Some(event)));
        &self.views.last().unwrap().0
    }

    /// Number of installed views (including the initial one).
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when only the initial view exists.
    pub fn is_empty(&self) -> bool {
        self.views.len() <= 1
    }

    /// Iterate views oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &GroupView> {
        self.views.iter().map(|(v, _)| v)
    }

    /// Events oldest-first (None for the initial view).
    pub fn events(&self) -> impl Iterator<Item = Option<&MembershipEvent>> {
        self.views.iter().map(|(_, e)| e.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view() {
        let v = GroupView::initial([3, 1, 2]);
        assert_eq!(v.view_id, 0);
        assert_eq!(v.size(), 3);
        assert_eq!(v.ordered_members(), vec![1, 2, 3]);
        assert!(v.contains(2));
        assert!(!v.contains(9));
    }

    #[test]
    fn join_leave_evict() {
        let v0 = GroupView::initial([1, 2]);
        let v1 = v0.apply(&MembershipEvent::Join(5));
        assert_eq!(v1.view_id, 1);
        assert!(v1.contains(5));
        let v2 = v1.apply(&MembershipEvent::Leave(1));
        assert!(!v2.contains(1));
        let v3 = v2.apply(&MembershipEvent::Evict(2));
        assert_eq!(v3.ordered_members(), vec![5]);
        assert_eq!(v3.view_id, 3);
    }

    #[test]
    #[should_panic]
    fn double_join_panics() {
        GroupView::initial([1]).apply(&MembershipEvent::Join(1));
    }

    #[test]
    #[should_panic]
    fn leave_nonmember_panics() {
        GroupView::initial([1]).apply(&MembershipEvent::Leave(2));
    }

    #[test]
    fn partition_keeps_subset() {
        let v = GroupView::initial([1, 2, 3, 4]);
        let p = v.apply(&MembershipEvent::Partition(vec![2, 4]));
        assert_eq!(p.ordered_members(), vec![2, 4]);
    }

    #[test]
    #[should_panic]
    fn partition_with_outsiders_panics() {
        GroupView::initial([1, 2]).apply(&MembershipEvent::Partition(vec![1, 7]));
    }

    #[test]
    fn merge_unions_members() {
        let v = GroupView::initial([1, 2]);
        let m = v.apply(&MembershipEvent::Merge(vec![8, 9]));
        assert_eq!(m.ordered_members(), vec![1, 2, 8, 9]);
    }

    #[test]
    fn history_tracks_views_and_events() {
        let mut h = ViewHistory::new(GroupView::initial([1, 2, 3]));
        assert!(h.is_empty());
        h.install(MembershipEvent::Join(4));
        h.install(MembershipEvent::Evict(2));
        assert_eq!(h.len(), 3);
        assert_eq!(h.current().ordered_members(), vec![1, 3, 4]);
        let ids: Vec<u64> = h.iter().map(|v| v.view_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let events: Vec<bool> = h.events().map(|e| e.is_some()).collect();
        assert_eq!(events, vec![false, true, true]);
    }
}
