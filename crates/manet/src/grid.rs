//! Spatial hash grid for neighbor queries.
//!
//! Building the unit-disc connectivity graph naively is O(n²) distance
//! checks per step; binning nodes into cells of side `radio_range` reduces
//! that to scanning the 3×3 neighborhood of each node's cell — the standard
//! cell-list technique from molecular dynamics.

use crate::geometry::Vec2;
use std::collections::BTreeMap;

/// Spatial hash over points with a fixed cell size.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: f64,
    // BTreeMap so pair-visit order is a function of cell coordinates, not
    // hasher state — callbacks that accumulate floats see a fixed order.
    bins: BTreeMap<(i32, i32), Vec<u32>>,
}

impl SpatialGrid {
    /// Bin `points` into cells of side `cell_size`.
    ///
    /// # Panics
    /// Panics if `cell_size <= 0`.
    pub fn build(points: &[Vec2], cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut bins: BTreeMap<(i32, i32), Vec<u32>> = BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            bins.entry(Self::key(p, cell_size))
                .or_default()
                .push(i as u32);
        }
        Self {
            cell: cell_size,
            bins,
        }
    }

    fn key(p: &Vec2, cell: f64) -> (i32, i32) {
        ((p.x / cell).floor() as i32, (p.y / cell).floor() as i32)
    }

    /// Visit every unordered pair `(i, j)` with `i < j` whose distance is at
    /// most `radius` (`radius` must be ≤ the build cell size).
    ///
    /// # Panics
    /// Panics if `radius` exceeds the cell size.
    pub fn for_each_pair_within(&self, points: &[Vec2], radius: f64, mut f: impl FnMut(u32, u32)) {
        assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "radius {radius} exceeds cell {}",
            self.cell
        );
        let r2 = radius * radius;
        for (&(cx, cy), members) in &self.bins {
            // pairs within the same cell
            for (a_idx, &a) in members.iter().enumerate() {
                for &b in &members[a_idx + 1..] {
                    if points[a as usize].distance_sq(points[b as usize]) <= r2 {
                        f(a.min(b), a.max(b));
                    }
                }
            }
            // pairs with forward neighbor cells (half of the 8 neighbors, to
            // visit each cell pair once)
            for (dx, dy) in [(1, 0), (1, 1), (0, 1), (-1, 1)] {
                if let Some(others) = self.bins.get(&(cx + dx, cy + dy)) {
                    for &a in members {
                        for &b in others {
                            if points[a as usize].distance_sq(points[b as usize]) <= r2 {
                                f(a.min(b), a.max(b));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.bins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force_pairs(points: &[Vec2], radius: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                if points[i].distance_sq(points[j]) <= r2 {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(2..120);
            let points: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)))
                .collect();
            let radius = rng.gen_range(10.0..300.0);
            let grid = SpatialGrid::build(&points, radius);
            let mut got = Vec::new();
            grid.for_each_pair_within(&points, radius, |a, b| got.push((a, b)));
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, brute_force_pairs(&points, radius));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let grid = SpatialGrid::build(&[], 10.0);
        let mut count = 0;
        grid.for_each_pair_within(&[], 10.0, |_, _| count += 1);
        assert_eq!(count, 0);

        let pts = [Vec2::new(1.0, 1.0)];
        let grid = SpatialGrid::build(&pts, 10.0);
        grid.for_each_pair_within(&pts, 10.0, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn pairs_on_cell_boundaries_found() {
        // points in adjacent cells, just within radius
        let pts = [Vec2::new(9.9, 0.0), Vec2::new(10.1, 0.0)];
        let grid = SpatialGrid::build(&pts, 10.0);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pts, 10.0, |a, b| got.push((a, b)));
        assert_eq!(got, vec![(0, 1)]);
    }

    #[test]
    fn negative_coordinates_handled() {
        let pts = [
            Vec2::new(-5.0, -5.0),
            Vec2::new(-6.0, -5.5),
            Vec2::new(200.0, 200.0),
        ];
        let grid = SpatialGrid::build(&pts, 50.0);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pts, 50.0, |a, b| got.push((a, b)));
        assert_eq!(got, vec![(0, 1)]);
    }

    #[test]
    #[should_panic]
    fn radius_larger_than_cell_rejected() {
        let pts = [Vec2::ZERO];
        let grid = SpatialGrid::build(&pts, 10.0);
        grid.for_each_pair_within(&pts, 20.0, |_, _| {});
    }
}
