//! Unit-disc connectivity graph: adjacency, connected components (mobile
//! groups), and BFS hop counts.

use crate::geometry::Vec2;
use crate::grid::SpatialGrid;
use numerics::UnionFind;
use std::collections::VecDeque;

/// Snapshot of the communication graph at one instant.
#[derive(Debug)]
pub struct ConnectivityGraph {
    adjacency: Vec<Vec<u32>>,
    labels: Vec<u32>,
    component_sizes: Vec<u32>,
}

impl ConnectivityGraph {
    /// Build the unit-disc graph over `positions` with the given
    /// `radio_range` (two nodes are linked iff within range).
    pub fn build(positions: &[Vec2], radio_range: f64) -> Self {
        let n = positions.len();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut uf = UnionFind::new(n);
        if n > 0 {
            let grid = SpatialGrid::build(positions, radio_range.max(1e-9));
            grid.for_each_pair_within(positions, radio_range, |a, b| {
                adjacency[a as usize].push(b);
                adjacency[b as usize].push(a);
                uf.union(a as usize, b as usize);
            });
        }
        let (labels, component_sizes) = if n > 0 {
            uf.component_labels()
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            adjacency,
            labels,
            component_sizes,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adjacency[i]
    }

    /// Dense component label of node `i`.
    pub fn component_of(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Component labels for all nodes.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of connected components (mobile groups).
    pub fn component_count(&self) -> usize {
        self.component_sizes.len()
    }

    /// Size of each component.
    pub fn component_sizes(&self) -> &[u32] {
        &self.component_sizes
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// BFS hop distances from `source` (`u32::MAX` for unreachable nodes).
    pub fn hop_distances(&self, source: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut q = VecDeque::new();
        dist[source] = 0;
        q.push_back(source as u32);
        while let Some(u) = q.pop_front() {
            let du = dist[u as usize];
            for &v in &self.adjacency[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Mean hop count over all connected ordered pairs reachable from
    /// `source` (excluding the source itself); `None` if the source is
    /// isolated.
    pub fn mean_hops_from(&self, source: usize) -> Option<f64> {
        let dist = self.hop_distances(source);
        let mut total = 0u64;
        let mut count = 0u64;
        for (i, &d) in dist.iter().enumerate() {
            if i != source && d != u32::MAX {
                total += d as u64;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(total as f64 / count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Vec<Vec2> {
        (0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect()
    }

    #[test]
    fn chain_connectivity() {
        // nodes 100 m apart, range 150: a path graph
        let pts = line(5, 100.0);
        let g = ConnectivityGraph::build(&pts, 150.0);
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.hop_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.mean_hops_from(0), Some(2.5));
    }

    #[test]
    fn disconnected_components() {
        let mut pts = line(3, 10.0);
        pts.push(Vec2::new(1_000.0, 0.0));
        pts.push(Vec2::new(1_000.0, 5.0));
        let g = ConnectivityGraph::build(&pts, 20.0);
        assert_eq!(g.component_count(), 2);
        let mut sizes = g.component_sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        // cross-component distance is unreachable
        assert_eq!(g.hop_distances(0)[3], u32::MAX);
        assert_eq!(g.component_of(0), g.component_of(2));
        assert_ne!(g.component_of(0), g.component_of(3));
    }

    #[test]
    fn complete_graph_when_dense() {
        let pts = line(4, 1.0);
        let g = ConnectivityGraph::build(&pts, 10.0);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.mean_hops_from(2), Some(1.0));
    }

    #[test]
    fn isolated_node_mean_hops_none() {
        let pts = vec![Vec2::ZERO, Vec2::new(1_000.0, 0.0)];
        let g = ConnectivityGraph::build(&pts, 10.0);
        assert_eq!(g.mean_hops_from(0), None);
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = ConnectivityGraph::build(&[], 10.0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.component_count(), 0);
    }

    #[test]
    fn range_boundary_inclusive() {
        let pts = vec![Vec2::ZERO, Vec2::new(100.0, 0.0)];
        let g = ConnectivityGraph::build(&pts, 100.0);
        assert_eq!(g.edge_count(), 1);
        let g2 = ConnectivityGraph::build(&pts, 99.999);
        assert_eq!(g2.edge_count(), 0);
    }
}
