//! Hop-count statistics over the connectivity graph.
//!
//! The cost model measures traffic in hop·bits: a unicast message of `L`
//! bits crossing `h` hops costs `h·L`, and an intra-group flood costs one
//! transmission per member. These statistics are sampled during mobility
//! calibration and summarized as (a) an overall mean hop count and (b) mean
//! hop counts binned by group size (log₂ bins), which the core model can
//! interpolate.

use crate::graph::ConnectivityGraph;
use numerics::stats::Welford;
use rand::Rng;

/// Number of log₂ group-size bins (sizes 1, 2–3, 4–7, … up to 2¹⁵⁺).
pub const SIZE_BINS: usize = 16;

/// Accumulates hop-count samples.
#[derive(Debug, Clone)]
pub struct HopSampler {
    overall: Welford,
    by_size: Vec<Welford>,
}

impl Default for HopSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl HopSampler {
    /// Empty sampler.
    pub fn new() -> Self {
        Self {
            overall: Welford::new(),
            by_size: vec![Welford::new(); SIZE_BINS],
        }
    }

    /// Log₂ bin index for a group size.
    pub fn bin_for_size(size: u32) -> usize {
        (32 - size.max(1).leading_zeros() - 1).min(SIZE_BINS as u32 - 1) as usize
    }

    /// Sample mean hop counts from `samples` random source nodes of the
    /// graph (sources in singleton components contribute nothing).
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        graph: &ConnectivityGraph,
        samples: usize,
        rng: &mut R,
    ) {
        let n = graph.node_count();
        if n == 0 {
            return;
        }
        for _ in 0..samples {
            let src = rng.gen_range(0..n);
            if let Some(h) = graph.mean_hops_from(src) {
                let size = graph.component_sizes()[graph.component_of(src) as usize];
                self.overall.push(h);
                self.by_size[Self::bin_for_size(size)].push(h);
            }
        }
    }

    /// Overall mean hop count (≥ 1 whenever any sample was taken).
    pub fn mean_hops(&self) -> f64 {
        if self.overall.count() == 0 {
            1.0
        } else {
            self.overall.mean()
        }
    }

    /// Number of samples taken.
    pub fn sample_count(&self) -> u64 {
        self.overall.count()
    }

    /// Mean hop count for a given group size: the size's bin if populated,
    /// otherwise the overall mean, floored at 1 hop.
    pub fn hops_for_group_size(&self, size: u32) -> f64 {
        let bin = &self.by_size[Self::bin_for_size(size)];
        let h = if bin.count() > 0 {
            bin.mean()
        } else {
            self.mean_hops()
        };
        h.max(1.0)
    }

    /// Merge another sampler's data.
    pub fn merge(&mut self, other: &HopSampler) {
        self.overall.merge(&other.overall);
        for (a, b) in self.by_size.iter_mut().zip(&other.by_size) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bin_indices() {
        assert_eq!(HopSampler::bin_for_size(1), 0);
        assert_eq!(HopSampler::bin_for_size(2), 1);
        assert_eq!(HopSampler::bin_for_size(3), 1);
        assert_eq!(HopSampler::bin_for_size(4), 2);
        assert_eq!(HopSampler::bin_for_size(100), 6);
        assert_eq!(HopSampler::bin_for_size(u32::MAX), SIZE_BINS - 1);
        // size 0 treated as 1
        assert_eq!(HopSampler::bin_for_size(0), 0);
    }

    #[test]
    fn sampling_a_chain_gives_expected_mean() {
        // path of 5 nodes, 100 m apart, range 150 — mean hops from the
        // middle node = (2+1+1+2)/4 = 1.5; from an end = 2.5
        let pts: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 100.0, 0.0)).collect();
        let g = ConnectivityGraph::build(&pts, 150.0);
        let mut s = HopSampler::new();
        let mut rng = StdRng::seed_from_u64(1);
        s.sample(&g, 2_000, &mut rng);
        assert!(s.sample_count() > 0);
        // average over uniformly random sources: (2.5+1.75+1.5+1.75+2.5)/5 = 2.0
        assert!((s.mean_hops() - 2.0).abs() < 0.1, "{}", s.mean_hops());
        assert!(s.hops_for_group_size(5) >= 1.0);
    }

    #[test]
    fn isolated_nodes_contribute_nothing() {
        let pts = vec![Vec2::ZERO, Vec2::new(9_999.0, 0.0)];
        let g = ConnectivityGraph::build(&pts, 10.0);
        let mut s = HopSampler::new();
        let mut rng = StdRng::seed_from_u64(2);
        s.sample(&g, 100, &mut rng);
        assert_eq!(s.sample_count(), 0);
        assert_eq!(s.mean_hops(), 1.0); // fallback
        assert_eq!(s.hops_for_group_size(7), 1.0);
    }

    #[test]
    fn merge_combines_counts() {
        let pts: Vec<Vec2> = (0..4).map(|i| Vec2::new(i as f64 * 50.0, 0.0)).collect();
        let g = ConnectivityGraph::build(&pts, 60.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = HopSampler::new();
        a.sample(&g, 50, &mut rng);
        let mut b = HopSampler::new();
        b.sample(&g, 70, &mut rng);
        let (ca, cb) = (a.sample_count(), b.sample_count());
        a.merge(&b);
        assert_eq!(a.sample_count(), ca + cb);
    }
}
