//! Planar geometry for the operational area.

use rand::Rng;

/// A 2-D vector / point in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Origin.
    pub const ZERO: Vec2 = Vec2::new(0.0, 0.0);

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm (avoids the sqrt in hot distance checks).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in this direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Scale by a scalar.
    pub fn scale(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

/// Disc-shaped operational region centered at the origin, matching the
/// paper's "operational area ... radius = 500 m".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disc {
    /// Radius in meters.
    pub radius: f64,
}

impl Disc {
    /// Create a disc of the given radius.
    ///
    /// # Panics
    /// Panics if `radius <= 0`.
    pub fn new(radius: f64) -> Self {
        assert!(radius > 0.0, "disc radius must be positive, got {radius}");
        Self { radius }
    }

    /// True when `p` lies inside (or on) the disc.
    pub fn contains(&self, p: Vec2) -> bool {
        p.norm_sq() <= self.radius * self.radius * (1.0 + 1e-12)
    }

    /// Uniform random point inside the disc (inverse-CDF radial sampling).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec2 {
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let r = self.radius * rng.gen::<f64>().sqrt();
        Vec2::new(r * theta.cos(), r * theta.sin())
    }

    /// Clamp a point back inside the disc (projects onto the boundary).
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        let n = p.norm();
        if n <= self.radius {
            p
        } else {
            p.scale(self.radius / n)
        }
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(1.0, -1.0);
        assert_eq!((a + b), Vec2::new(4.0, 3.0));
        assert_eq!((a - b), Vec2::new(2.0, 5.0));
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.distance(b), ((2.0f64).powi(2) + 25.0).sqrt());
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn disc_contains_and_clamp() {
        let d = Disc::new(10.0);
        assert!(d.contains(Vec2::new(6.0, 8.0)));
        assert!(!d.contains(Vec2::new(7.0, 8.0)));
        let clamped = d.clamp(Vec2::new(30.0, 40.0));
        assert!((clamped.norm() - 10.0).abs() < 1e-12);
        // interior points unchanged
        assert_eq!(d.clamp(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn uniform_samples_inside_and_spread() {
        let d = Disc::new(500.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut inside_half = 0;
        for _ in 0..n {
            let p = d.sample_uniform(&mut rng);
            assert!(d.contains(p));
            if p.norm() < 500.0 / 2.0_f64.sqrt() {
                inside_half += 1;
            }
        }
        // radius/sqrt2 disc has half the area → about half the points
        let frac = inside_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "{frac}");
    }

    #[test]
    #[should_panic]
    fn zero_radius_rejected() {
        Disc::new(0.0);
    }
}
