//! Random-waypoint mobility (the paper's stated model).
//!
//! Each node independently: picks a uniform waypoint in the disc, travels
//! toward it in a straight line at a speed drawn uniformly from
//! `[speed_min, speed_max]`, pauses for `pause_time` seconds on arrival,
//! and repeats. Positions are advanced with a fixed time step by
//! [`RandomWaypoint::step`].

use crate::geometry::{Disc, Vec2};
use rand::Rng;

/// Parameters of the random-waypoint model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Number of nodes.
    pub node_count: usize,
    /// Operational-area radius in meters (paper default: 500 m).
    pub area_radius: f64,
    /// Minimum speed (m/s); must be > 0 to avoid the well-known
    /// random-waypoint speed-decay pathology.
    pub speed_min: f64,
    /// Maximum speed (m/s).
    pub speed_max: f64,
    /// Pause time at each waypoint (s).
    pub pause_time: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        // Dismounted-unit speeds; see DESIGN.md §2.4 (the paper does not
        // publish its speed settings).
        Self {
            node_count: 100,
            area_radius: 500.0,
            speed_min: 1.0,
            speed_max: 5.0,
            pause_time: 30.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Travelling toward the waypoint at the given speed.
    Moving { speed: f64 },
    /// Paused; seconds of pause remaining.
    Paused { remaining: f64 },
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    position: Vec2,
    waypoint: Vec2,
    phase: Phase,
}

/// Random-waypoint mobility process for a population of nodes.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    cfg: MobilityConfig,
    disc: Disc,
    nodes: Vec<NodeState>,
}

impl RandomWaypoint {
    /// Initialize with uniform positions and fresh waypoints.
    ///
    /// # Panics
    /// Panics on non-positive speeds, `speed_min > speed_max`, or an empty
    /// population.
    pub fn new<R: Rng + ?Sized>(cfg: MobilityConfig, rng: &mut R) -> Self {
        assert!(cfg.node_count > 0, "need at least one node");
        assert!(
            cfg.speed_min > 0.0 && cfg.speed_max >= cfg.speed_min,
            "bad speed range [{}, {}]",
            cfg.speed_min,
            cfg.speed_max
        );
        assert!(cfg.pause_time >= 0.0, "negative pause time");
        let disc = Disc::new(cfg.area_radius);
        let nodes = (0..cfg.node_count)
            .map(|_| {
                let position = disc.sample_uniform(rng);
                let waypoint = disc.sample_uniform(rng);
                let speed = sample_speed(&cfg, rng);
                NodeState {
                    position,
                    waypoint,
                    phase: Phase::Moving { speed },
                }
            })
            .collect();
        Self { cfg, disc, nodes }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Model parameters.
    pub fn config(&self) -> &MobilityConfig {
        &self.cfg
    }

    /// Current position of node `i`.
    pub fn position(&self, i: usize) -> Vec2 {
        self.nodes[i].position
    }

    /// All positions (allocates).
    pub fn positions(&self) -> Vec<Vec2> {
        self.nodes.iter().map(|n| n.position).collect()
    }

    /// Advance every node by `dt` seconds. Waypoint arrivals inside the
    /// step are handled exactly (remaining time is spent paused/en route to
    /// the next waypoint).
    ///
    /// # Panics
    /// Panics if `dt < 0`.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) {
        assert!(dt >= 0.0, "negative dt {dt}");
        for i in 0..self.nodes.len() {
            let mut remaining = dt;
            // A node can pass through several waypoint/pause cycles in one
            // step when dt is large; loop until the step is exhausted.
            while remaining > 0.0 {
                let node = &mut self.nodes[i];
                match node.phase {
                    Phase::Paused {
                        remaining: pause_left,
                    } => {
                        if pause_left > remaining {
                            node.phase = Phase::Paused {
                                remaining: pause_left - remaining,
                            };
                            remaining = 0.0;
                        } else {
                            remaining -= pause_left;
                            node.waypoint = self.disc.sample_uniform(rng);
                            let speed = sample_speed(&self.cfg, rng);
                            node.phase = Phase::Moving { speed };
                        }
                    }
                    Phase::Moving { speed } => {
                        let to_wp = node.waypoint - node.position;
                        let dist = to_wp.norm();
                        let travel = speed * remaining;
                        if travel < dist {
                            let dir = to_wp.normalized().expect("nonzero distance");
                            node.position = node.position + dir.scale(travel);
                            remaining = 0.0;
                        } else {
                            node.position = node.waypoint;
                            remaining -= dist / speed;
                            node.phase = Phase::Paused {
                                remaining: self.cfg.pause_time,
                            };
                            if self.cfg.pause_time == 0.0 {
                                node.waypoint = self.disc.sample_uniform(rng);
                                let speed = sample_speed(&self.cfg, rng);
                                node.phase = Phase::Moving { speed };
                            }
                        }
                    }
                }
            }
        }
    }
}

fn sample_speed<R: Rng + ?Sized>(cfg: &MobilityConfig, rng: &mut R) -> f64 {
    if cfg.speed_max == cfg.speed_min {
        cfg.speed_min
    } else {
        rng.gen_range(cfg.speed_min..cfg.speed_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64, cfg: MobilityConfig) -> (RandomWaypoint, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = RandomWaypoint::new(cfg, &mut rng);
        (m, rng)
    }

    #[test]
    fn nodes_stay_in_region() {
        let cfg = MobilityConfig {
            node_count: 50,
            ..Default::default()
        };
        let (mut m, mut rng) = model(3, cfg);
        let disc = Disc::new(cfg.area_radius);
        for _ in 0..500 {
            m.step(1.0, &mut rng);
            for i in 0..m.node_count() {
                assert!(disc.contains(m.position(i)), "node {i} escaped");
            }
        }
    }

    #[test]
    fn nodes_actually_move() {
        let cfg = MobilityConfig {
            node_count: 10,
            pause_time: 0.0,
            ..Default::default()
        };
        let (mut m, mut rng) = model(4, cfg);
        let before = m.positions();
        m.step(10.0, &mut rng);
        let moved = before
            .iter()
            .zip(m.positions())
            .filter(|(b, a)| b.distance(*a) > 1.0)
            .count();
        assert!(moved >= 8, "only {moved} nodes moved");
    }

    #[test]
    fn speed_bounds_respected() {
        let cfg = MobilityConfig {
            node_count: 20,
            pause_time: 0.0,
            speed_min: 2.0,
            speed_max: 2.0, // deterministic speed
            ..Default::default()
        };
        let (mut m, mut rng) = model(5, cfg);
        let before = m.positions();
        let dt = 3.0;
        m.step(dt, &mut rng);
        for (b, a) in before.iter().zip(m.positions()) {
            // displacement can be shorter than speed·dt (waypoint turns) but
            // never longer
            assert!(b.distance(a) <= 2.0 * dt + 1e-9);
        }
    }

    #[test]
    fn pause_halts_movement() {
        let cfg = MobilityConfig {
            node_count: 1,
            pause_time: 1e9, // effectively forever after first arrival
            speed_min: 1000.0,
            speed_max: 1000.0,
            ..Default::default()
        };
        let (mut m, mut rng) = model(6, cfg);
        // at 1000 m/s in a 500 m disc every leg completes within 1 s
        m.step(2.0, &mut rng);
        let at_waypoint = m.position(0);
        m.step(100.0, &mut rng);
        assert_eq!(m.position(0), at_waypoint);
    }

    #[test]
    fn multiple_waypoints_in_one_big_step() {
        let cfg = MobilityConfig {
            node_count: 5,
            pause_time: 0.1,
            speed_min: 100.0,
            speed_max: 200.0,
            ..Default::default()
        };
        let (mut m, mut rng) = model(7, cfg);
        // one huge step must terminate (several waypoint cycles inside)
        m.step(1_000.0, &mut rng);
        let disc = Disc::new(cfg.area_radius);
        for i in 0..m.node_count() {
            assert!(disc.contains(m.position(i)));
        }
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let cfg = MobilityConfig {
            speed_min: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        RandomWaypoint::new(cfg, &mut rng);
    }

    #[test]
    fn deterministic_with_seed() {
        let cfg = MobilityConfig {
            node_count: 12,
            ..Default::default()
        };
        let (mut a, mut ra) = model(11, cfg);
        let (mut b, mut rb) = model(11, cfg);
        for _ in 0..50 {
            a.step(1.0, &mut ra);
            b.step(1.0, &mut rb);
        }
        for i in 0..12 {
            assert_eq!(a.position(i), b.position(i));
        }
    }
}
