//! Mobile-group dynamics: partition/merge event detection and birth–death
//! rate calibration.
//!
//! The SPN models the number of groups `NG` as a birth–death process with
//! partition rate `σ_par(g) = ν_p · g` and merge rate
//! `σ_mer(g) = ν_m · (g − 1)` (no merge possible with a single group). The
//! per-group constants `ν_p`, `ν_m` are fitted here from long mobility
//! runs: we count partition/merge events binned by the group count at which
//! they occurred and fit the linear rate laws by weighted least squares
//! through the origin (weights = time spent at each count). This is the
//! paper's "group merging/partitioning rates obtained by simulation".

use crate::graph::ConnectivityGraph;
use crate::hops::HopSampler;
use crate::mobility::RandomWaypoint;
use crate::CalibrationConfig;
use numerics::stats::Welford;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum group count tracked in the binned statistics.
pub const MAX_TRACKED_GROUPS: usize = 64;

/// A group membership change event between two consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupEvent {
    /// One previous group split into `into` new groups (`into − 1` birth
    /// events).
    Partition {
        /// Number of fragments the group split into (≥ 2).
        into: u32,
    },
    /// `from` previous groups merged into one (`from − 1` death events).
    Merge {
        /// Number of groups that combined (≥ 2).
        from: u32,
    },
}

/// Tracks component-label snapshots and accumulates event statistics.
#[derive(Debug, Clone)]
pub struct DynamicsTracker {
    prev_labels: Vec<u32>,
    prev_count: usize,
    /// Time spent at each group count.
    time_at: Vec<f64>,
    /// Partition (birth) events observed while at each group count.
    partitions_at: Vec<u64>,
    /// Merge (death) events observed while at each group count.
    merges_at: Vec<u64>,
    group_count_stats: Welford,
    group_size_stats: Welford,
}

impl DynamicsTracker {
    /// Start tracking from an initial snapshot.
    pub fn new(graph: &ConnectivityGraph) -> Self {
        Self {
            prev_labels: graph.labels().to_vec(),
            prev_count: graph.component_count(),
            time_at: vec![0.0; MAX_TRACKED_GROUPS + 1],
            partitions_at: vec![0; MAX_TRACKED_GROUPS + 1],
            merges_at: vec![0; MAX_TRACKED_GROUPS + 1],
            group_count_stats: Welford::new(),
            group_size_stats: Welford::new(),
        }
    }

    /// Observe the next snapshot taken `dt` seconds after the previous one.
    /// Returns the events detected in between.
    pub fn observe(&mut self, dt: f64, graph: &ConnectivityGraph) -> Vec<GroupEvent> {
        assert_eq!(
            graph.labels().len(),
            self.prev_labels.len(),
            "node population changed"
        );
        let bin = self.prev_count.min(MAX_TRACKED_GROUPS);
        self.time_at[bin] += dt;
        self.group_count_stats.push(self.prev_count as f64);
        for &s in graph.component_sizes() {
            self.group_size_stats.push(s as f64);
        }

        let mut events = Vec::new();
        // old component -> set of new components its members now occupy.
        // Ordered maps so the emitted GroupEvent sequence is label-ordered,
        // not hasher-ordered.
        let mut splits: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        // new component -> set of old components feeding it
        let mut joins: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (old, new) in self.prev_labels.iter().zip(graph.labels()) {
            splits.entry(*old).or_default().insert(*new);
            joins.entry(*new).or_default().insert(*old);
        }
        for set in splits.values() {
            if set.len() > 1 {
                let into = set.len() as u32;
                events.push(GroupEvent::Partition { into });
                self.partitions_at[bin] += (into - 1) as u64;
            }
        }
        for set in joins.values() {
            if set.len() > 1 {
                let from = set.len() as u32;
                events.push(GroupEvent::Merge { from });
                self.merges_at[bin] += (from - 1) as u64;
            }
        }

        self.prev_labels.copy_from_slice(graph.labels());
        self.prev_count = graph.component_count();
        events
    }

    /// Finish tracking and produce calibration output (hop data supplied by
    /// the caller).
    pub fn finish(self, hops: HopSampler) -> CalibrationResult {
        let mut r = CalibrationResult {
            total_time: self.time_at.iter().sum(),
            time_at: self.time_at,
            partitions_at: self.partitions_at,
            merges_at: self.merges_at,
            mean_group_count: self.group_count_stats.mean().max(1.0),
            mean_group_size: self.group_size_stats.mean(),
            partition_rate_per_group: 0.0,
            merge_rate_per_group: 0.0,
            mean_hops: hops.mean_hops(),
            hops,
        };
        r.refit();
        r
    }
}

/// Output of mobility calibration: the birth–death rates for `T_PAR` /
/// `T_MER` and hop statistics for the cost model.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    /// Total simulated time across all merged runs.
    pub total_time: f64,
    /// Time spent at each group count (index = count).
    pub time_at: Vec<f64>,
    /// Partition (birth) events binned by the group count they occurred at.
    pub partitions_at: Vec<u64>,
    /// Merge (death) events binned by group count.
    pub merges_at: Vec<u64>,
    /// Time-averaged number of groups.
    pub mean_group_count: f64,
    /// Mean group (component) size over snapshots.
    pub mean_group_size: f64,
    /// Fitted per-group partition rate `ν_p` (events/s per group).
    pub partition_rate_per_group: f64,
    /// Fitted per-group merge rate `ν_m` (events/s per mergeable group).
    pub merge_rate_per_group: f64,
    /// Mean member-to-member hop count.
    pub mean_hops: f64,
    /// Full hop sampler (size-binned means).
    pub hops: HopSampler,
}

impl CalibrationResult {
    /// Refit `ν_p`, `ν_m` from the binned counts: weighted least squares
    /// through the origin for `rate(g) = ν_p·g` and `rate(g) = ν_m·(g−1)`.
    pub fn refit(&mut self) {
        let mut num_p = 0.0;
        let mut den_p = 0.0;
        let mut num_m = 0.0;
        let mut den_m = 0.0;
        for g in 1..self.time_at.len() {
            let t = self.time_at[g];
            if t <= 0.0 {
                continue;
            }
            let gf = g as f64;
            num_p += gf * self.partitions_at[g] as f64;
            den_p += t * gf * gf;
            let mf = (g - 1) as f64;
            num_m += mf * self.merges_at[g] as f64;
            den_m += t * mf * mf;
        }
        self.partition_rate_per_group = if den_p > 0.0 { num_p / den_p } else { 0.0 };
        self.merge_rate_per_group = if den_m > 0.0 { num_m / den_m } else { 0.0 };
    }

    /// Birth rate `σ_par(g)` used by the SPN's `T_PAR`.
    pub fn partition_rate(&self, groups: u32) -> f64 {
        self.partition_rate_per_group * groups as f64
    }

    /// Death rate `σ_mer(g)` used by the SPN's `T_MER` (zero for a single
    /// group).
    pub fn merge_rate(&self, groups: u32) -> f64 {
        self.merge_rate_per_group * groups.saturating_sub(1) as f64
    }

    /// Merge several per-seed results into one.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn merge(parts: &[CalibrationResult]) -> CalibrationResult {
        assert!(!parts.is_empty(), "nothing to merge");
        let bins = parts.iter().map(|p| p.time_at.len()).max().unwrap();
        let mut time_at = vec![0.0; bins];
        let mut partitions_at = vec![0u64; bins];
        let mut merges_at = vec![0u64; bins];
        let mut hops = HopSampler::new();
        let mut total_time = 0.0;
        let mut gc_weighted = 0.0;
        let mut gs_weighted = 0.0;
        for p in parts {
            for (i, &t) in p.time_at.iter().enumerate() {
                time_at[i] += t;
            }
            for (i, &c) in p.partitions_at.iter().enumerate() {
                partitions_at[i] += c;
            }
            for (i, &c) in p.merges_at.iter().enumerate() {
                merges_at[i] += c;
            }
            hops.merge(&p.hops);
            total_time += p.total_time;
            gc_weighted += p.mean_group_count * p.total_time;
            gs_weighted += p.mean_group_size * p.total_time;
        }
        let mut r = CalibrationResult {
            total_time,
            time_at,
            partitions_at,
            merges_at,
            mean_group_count: if total_time > 0.0 {
                gc_weighted / total_time
            } else {
                1.0
            },
            mean_group_size: if total_time > 0.0 {
                gs_weighted / total_time
            } else {
                0.0
            },
            partition_rate_per_group: 0.0,
            merge_rate_per_group: 0.0,
            mean_hops: hops.mean_hops(),
            hops,
        };
        r.refit();
        r
    }
}

/// Run one seed of the calibration simulation.
pub fn run_single_calibration(cfg: &CalibrationConfig, seed: u64) -> CalibrationResult {
    // detlint::allow(D003): leaf constructor — `seed` is a child_seed from the replicate grid, passed down by the executor
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mobility = RandomWaypoint::new(cfg.mobility, &mut rng);
    let mut positions = mobility.positions();
    let graph = ConnectivityGraph::build(&positions, cfg.radio_range);
    let mut tracker = DynamicsTracker::new(&graph);
    let mut hops = HopSampler::new();
    hops.sample(&graph, 4, &mut rng);

    let steps = (cfg.duration / cfg.dt).ceil() as usize;
    for step in 0..steps {
        mobility.step(cfg.dt, &mut rng);
        positions = mobility.positions();
        let graph = ConnectivityGraph::build(&positions, cfg.radio_range);
        tracker.observe(cfg.dt, &graph);
        if cfg.hop_sample_stride > 0 && step % cfg.hop_sample_stride == 0 {
            hops.sample(&graph, 4, &mut rng);
        }
    }
    tracker.finish(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use crate::MobilityConfig;

    fn graph_of(positions: &[Vec2]) -> ConnectivityGraph {
        ConnectivityGraph::build(positions, 50.0)
    }

    #[test]
    fn detects_partition() {
        let together = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)];
        let apart = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(500.0, 0.0)];
        let g0 = graph_of(&together);
        let mut t = DynamicsTracker::new(&g0);
        let events = t.observe(1.0, &graph_of(&apart));
        assert_eq!(events, vec![GroupEvent::Partition { into: 2 }]);
    }

    #[test]
    fn detects_merge() {
        let apart = vec![Vec2::ZERO, Vec2::new(500.0, 0.0)];
        let together = vec![Vec2::ZERO, Vec2::new(10.0, 0.0)];
        let g0 = graph_of(&apart);
        let mut t = DynamicsTracker::new(&g0);
        let events = t.observe(1.0, &graph_of(&together));
        assert_eq!(events, vec![GroupEvent::Merge { from: 2 }]);
    }

    #[test]
    fn three_way_split_counts_two_births() {
        let together = vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(20.0, 0.0),
            Vec2::new(30.0, 0.0),
        ];
        let spread = vec![
            Vec2::ZERO,
            Vec2::new(200.0, 0.0),
            Vec2::new(400.0, 0.0),
            Vec2::new(2.0, 0.0),
        ];
        let g0 = graph_of(&together);
        let mut t = DynamicsTracker::new(&g0);
        let events = t.observe(1.0, &graph_of(&spread));
        assert_eq!(events, vec![GroupEvent::Partition { into: 3 }]);
        let r = t.finish(HopSampler::new());
        assert_eq!(r.partitions_at[1], 2); // 3-way split = 2 birth events at count 1
    }

    #[test]
    fn no_events_when_stable() {
        let pts = vec![Vec2::ZERO, Vec2::new(10.0, 0.0)];
        let g0 = graph_of(&pts);
        let mut t = DynamicsTracker::new(&g0);
        for _ in 0..5 {
            assert!(t.observe(1.0, &graph_of(&pts)).is_empty());
        }
        let r = t.finish(HopSampler::new());
        assert_eq!(r.partitions_at.iter().sum::<u64>(), 0);
        assert_eq!(r.merges_at.iter().sum::<u64>(), 0);
        assert!((r.total_time - 5.0).abs() < 1e-12);
        assert!((r.mean_group_count - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_split_and_merge_detected() {
        // {0,1} and {2} become {0} and {1,2}
        let before = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(500.0, 0.0)];
        let after = vec![Vec2::ZERO, Vec2::new(495.0, 0.0), Vec2::new(500.0, 0.0)];
        let g0 = graph_of(&before);
        let mut t = DynamicsTracker::new(&g0);
        let events = t.observe(1.0, &graph_of(&after));
        assert!(events.contains(&GroupEvent::Partition { into: 2 }));
        assert!(events.contains(&GroupEvent::Merge { from: 2 }));
    }

    #[test]
    fn rates_fit_synthetic_birth_death() {
        // Construct a synthetic result with exact linear rates and check the
        // fit recovers them: rate_par(g) = 0.02 g, rate_mer(g) = 0.05 (g-1).
        let mut r = CalibrationResult {
            total_time: 0.0,
            time_at: vec![0.0; 6],
            partitions_at: vec![0; 6],
            merges_at: vec![0; 6],
            mean_group_count: 0.0,
            mean_group_size: 0.0,
            partition_rate_per_group: 0.0,
            merge_rate_per_group: 0.0,
            mean_hops: 1.0,
            hops: HopSampler::new(),
        };
        for g in 1..=4usize {
            let t = 1_000.0;
            r.time_at[g] = t;
            r.partitions_at[g] = (0.02 * g as f64 * t).round() as u64;
            r.merges_at[g] = (0.05 * (g - 1) as f64 * t).round() as u64;
        }
        r.total_time = 4_000.0;
        r.refit();
        assert!(
            (r.partition_rate_per_group - 0.02).abs() < 1e-3,
            "{}",
            r.partition_rate_per_group
        );
        assert!(
            (r.merge_rate_per_group - 0.05).abs() < 1e-3,
            "{}",
            r.merge_rate_per_group
        );
        assert!((r.partition_rate(3) - 0.06).abs() < 3e-3);
        assert!((r.merge_rate(1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn merge_of_results_adds_counts() {
        let mk = |t: f64, p: u64| {
            let mut r = CalibrationResult {
                total_time: t,
                time_at: vec![0.0, t],
                partitions_at: vec![0, p],
                merges_at: vec![0, 0],
                mean_group_count: 1.0,
                mean_group_size: 5.0,
                partition_rate_per_group: 0.0,
                merge_rate_per_group: 0.0,
                mean_hops: 1.0,
                hops: HopSampler::new(),
            };
            r.refit();
            r
        };
        let merged = CalibrationResult::merge(&[mk(100.0, 5), mk(300.0, 15)]);
        assert_eq!(merged.partitions_at[1], 20);
        assert!((merged.total_time - 400.0).abs() < 1e-12);
        // fitted rate = 20 events / 400 s at g=1
        assert!((merged.partition_rate_per_group - 0.05).abs() < 1e-12);
    }

    #[test]
    fn calibration_run_produces_sane_output() {
        let cfg = CalibrationConfig {
            duration: 500.0,
            seeds: 1,
            mobility: MobilityConfig {
                node_count: 25,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_single_calibration(&cfg, 12);
        assert!(r.total_time >= 500.0 - 1.0);
        assert!(r.mean_group_count >= 1.0);
        assert!(r.mean_hops >= 1.0);
        assert!(r.partition_rate_per_group >= 0.0);
        assert!(r.merge_rate_per_group >= 0.0);
    }

    #[test]
    #[should_panic]
    fn population_change_panics() {
        let g0 = graph_of(&[Vec2::ZERO]);
        let mut t = DynamicsTracker::new(&g0);
        t.observe(1.0, &graph_of(&[Vec2::ZERO, Vec2::new(1.0, 0.0)]));
    }
}
