//! MANET substrate: mobility, connectivity, and mobile-group dynamics.
//!
//! The paper's system model places `N = 100` nodes in a disc-shaped
//! operational area (radius 500 m) moving under the **random waypoint**
//! model, with mobile groups defined by *connectivity* — the connected
//! components of the unit-disc communication graph. Two SPN transition
//! rates (`T_PAR` group partition, `T_MER` group merge) and the hop-count
//! factors of the communication-cost model are "obtained by simulation for
//! a sufficiently long period of time" (paper §4.1); this crate is that
//! simulation:
//!
//! * [`geometry`] — 2-D vectors and the disc region;
//! * [`mobility`] — the random-waypoint process;
//! * [`grid`] — spatial hashing for O(n) neighbor queries;
//! * [`graph`] — unit-disc connectivity, components, BFS hop counts;
//! * [`dynamics`] — partition/merge event tracking and birth–death rate
//!   calibration binned by group count;
//! * [`hops`] — hop-count and flooding-cost statistics per group size.
//!
//! The top-level [`calibrate`] runs everything over parallel seeds and
//! produces the constants consumed by the core model.

pub mod dynamics;
pub mod geometry;
pub mod graph;
pub mod grid;
pub mod hops;
pub mod mobility;

pub use dynamics::{CalibrationResult, DynamicsTracker, GroupEvent};
pub use geometry::{Disc, Vec2};
pub use graph::ConnectivityGraph;
pub use mobility::{MobilityConfig, RandomWaypoint};

use numerics::rng::child_seed;
use rayon::prelude::*;

/// Full calibration configuration.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Mobility model parameters.
    pub mobility: MobilityConfig,
    /// Radio range in meters (unit-disc model).
    pub radio_range: f64,
    /// Simulation step in seconds.
    pub dt: f64,
    /// Simulated duration per seed, in seconds.
    pub duration: f64,
    /// Number of independent seeds (run in parallel).
    pub seeds: u64,
    /// Hop statistics sampling stride (in steps).
    pub hop_sample_stride: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            mobility: MobilityConfig::default(),
            radio_range: 250.0,
            dt: 1.0,
            duration: 20_000.0,
            seeds: 8,
            hop_sample_stride: 50,
        }
    }
}

/// Run the mobility calibration: simulate `cfg.seeds` independent runs in
/// parallel and merge their partition/merge statistics and hop counts.
pub fn calibrate(cfg: &CalibrationConfig, master_seed: u64) -> CalibrationResult {
    let per_seed: Vec<CalibrationResult> = (0..cfg.seeds)
        .into_par_iter()
        .map(|i| dynamics::run_single_calibration(cfg, child_seed(master_seed, i)))
        .collect();
    CalibrationResult::merge(&per_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_smoke_parallel() {
        let cfg = CalibrationConfig {
            duration: 400.0,
            seeds: 2,
            mobility: MobilityConfig {
                node_count: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = calibrate(&cfg, 7);
        assert!(r.total_time > 0.0);
        assert!(r.mean_group_count >= 1.0);
        assert!(r.mean_hops >= 1.0);
    }

    #[test]
    fn calibrate_deterministic() {
        let cfg = CalibrationConfig {
            duration: 200.0,
            seeds: 2,
            mobility: MobilityConfig {
                node_count: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = calibrate(&cfg, 99);
        let b = calibrate(&cfg, 99);
        assert_eq!(a.mean_group_count, b.mean_group_count);
        assert_eq!(a.partition_rate_per_group, b.partition_rate_per_group);
    }
}
