//! Property tests pinning the replication engine's determinism contract:
//! `Fixed(n)` results are bit-identical however the index space is
//! partitioned into adaptive rounds (the "batch size" axis) or folded by
//! workers (the chunk grid is fixed, so thread partitioning cannot move a
//! record between sinks), and `Adaptive` plans honor their budget and
//! their claimed precision.

use numerics::replicate::{run_plan, OutcomeSink, Replicate, SamplingPlan};
use numerics::rng::SplitMix64;
use numerics::stats::{SurvivalAccumulator, Welford};
use proptest::prelude::*;

/// Toy experiment shaped like the simulators' outcomes: a pseudo-random
/// "failure time" plus a censoring flag.
struct FakeSim {
    horizon: f64,
}

impl Replicate for FakeSim {
    type Outcome = (f64, bool);

    fn run_one(&self, seed: u64) -> (f64, bool) {
        let mut rng = SplitMix64::new(seed);
        // inverse-CDF exponential draw with a heavy-ish spread
        let t = -(1.0 - rng.next_f64()).ln() * 40.0;
        if t >= self.horizon {
            (self.horizon, true)
        } else {
            (t, false)
        }
    }
}

/// Mean-time plus survival counts — a miniature of the engine's sink.
#[derive(Clone, Debug, PartialEq)]
struct StatSink {
    time: Welford,
    survival: SurvivalAccumulator,
    censored: u64,
}

impl StatSink {
    fn new() -> Self {
        Self {
            time: Welford::new(),
            survival: SurvivalAccumulator::new(&[0.0, 20.0, 60.0]),
            censored: 0,
        }
    }
}

impl OutcomeSink<(f64, bool)> for StatSink {
    fn record(&mut self, (t, censored): (f64, bool)) {
        self.survival.push(t, censored);
        if censored {
            self.censored += 1;
        } else {
            self.time.push(t);
        }
    }

    fn merge(&mut self, other: Self) {
        self.time.merge(&other.time);
        self.survival.merge(&other.survival);
        self.censored += other.censored;
    }

    fn precision(&self) -> Option<f64> {
        (self.time.count() >= 2).then(|| self.time.confidence_interval(0.95).relative_half_width())
    }
}

proptest! {
    // Fixed(n) must be bit-identical however the run is partitioned into
    // rounds: an adaptive plan with an unreachable target and an arbitrary
    // (min, batch) split walks the same index space in different-sized
    // rounds and must land on the very same bits.
    #[test]
    fn fixed_estimates_bit_identical_across_batch_partitions(
        seed in 0u64..1_000,
        n in 1u64..300,
        min in 1u64..300,
        batch in 1u64..97,
    ) {
        prop_assume!(min <= n);
        let task = FakeSim { horizon: 120.0 };
        let fixed = run_plan(&task, &SamplingPlan::Fixed(n), seed, StatSink::new);
        prop_assert_eq!(fixed.replications, n);

        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-12, // unreachable: always runs to max
            min,
            max: n,
            batch,
        };
        let adaptive = run_plan(&task, &plan, seed, StatSink::new);
        prop_assert_eq!(adaptive.replications, n);
        // bit-for-bit: Welford moments, survival counters, censor counts
        prop_assert_eq!(adaptive.sink, fixed.sink);
    }

    // Two identical fixed runs agree exactly, and the outcome stream is a
    // pure function of (master_seed, index): extending n only appends.
    #[test]
    fn fixed_prefix_property(seed in 0u64..1_000, n in 2u64..200, extra in 1u64..100) {
        let task = FakeSim { horizon: 120.0 };
        let a = run_plan(&task, &SamplingPlan::Fixed(n), seed, StatSink::new);
        let b = run_plan(&task, &SamplingPlan::Fixed(n), seed, StatSink::new);
        prop_assert_eq!(&a.sink, &b.sink);
        let longer = run_plan(&task, &SamplingPlan::Fixed(n + extra), seed, StatSink::new);
        // counts only grow — the first n outcomes are the same stream
        prop_assert_eq!(
            longer.sink.time.count() + longer.sink.censored,
            n + extra
        );
        prop_assert!(longer.sink.censored >= a.sink.censored);
        prop_assert!(longer.sink.time.count() >= a.sink.time.count());
    }

    // Adaptive stops at-or-under max, and whenever it claims the target
    // was met the final precision actually meets it.
    #[test]
    fn adaptive_honors_budget_and_claimed_target(
        seed in 0u64..1_000,
        target in 0.02f64..0.5,
        min in 2u64..64,
        max_extra in 0u64..600,
        batch in 1u64..64,
    ) {
        let task = FakeSim { horizon: 120.0 };
        let max = min + max_extra;
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: target,
            min,
            max,
            batch,
        };
        let done = run_plan(&task, &plan, seed, StatSink::new);
        prop_assert!(done.replications >= min.min(max));
        prop_assert!(done.replications <= max, "{} > {}", done.replications, max);
        match done.target_met {
            Some(true) => {
                let p = done.sink.precision().expect("met target implies estimable");
                prop_assert!(p <= target, "claimed {target}, got {p}");
            }
            Some(false) => prop_assert_eq!(done.replications, max),
            None => prop_assert!(false, "adaptive must carry a verdict"),
        }
    }
}
