//! Property-based tests for the numerics substrate.
#![allow(clippy::needless_range_loop)] // dense reference matrices are index-driven

use numerics::dist::{Binomial, Hypergeometric, Poisson};
use numerics::linsolve::{dense_lu_solve, gauss_seidel, IterConfig};
use numerics::search::{golden_section_max, log_space};
use numerics::sparse::Triplets;
use numerics::special::{ln_binomial, ln_gamma, log_add_exp, norm_cdf, norm_quantile};
use numerics::stats::{KahanSum, Welford};
use numerics::UnionFind;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ln_gamma_recurrence_holds(x in 0.1f64..500.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn ln_binomial_symmetry(n in 0u64..200, k in 0u64..200) {
        prop_assume!(k <= n);
        let a = ln_binomial(n, k);
        let b = ln_binomial(n, n - k);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_pascal(n in 1u64..150, k in 1u64..150) {
        prop_assume!(k <= n);
        // C(n+1, k) = C(n, k) + C(n, k-1)
        let lhs = ln_binomial(n + 1, k);
        let rhs = log_add_exp(ln_binomial(n, k), ln_binomial(n, k - 1));
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn norm_quantile_is_inverse_cdf(p in 0.0001f64..0.9999) {
        let x = norm_quantile(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn binomial_probabilities_in_unit_range(n in 0u64..80, p in 0.0f64..=1.0, k in 0u64..100) {
        let b = Binomial::new(n, p);
        let pmf = b.pmf(k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pmf));
        let cdf = b.cdf(k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&cdf));
        let sum = b.cdf(k) + b.sf(k);
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_cdf_monotone(n in 1u64..60, p in 0.0f64..=1.0) {
        let b = Binomial::new(n, p);
        let mut last = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= last);
            last = c;
        }
        prop_assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hypergeometric_mass_is_one(total in 1u64..80, tagged_frac in 0.0f64..=1.0, draw_frac in 0.0f64..=1.0) {
        let tagged = ((total as f64) * tagged_frac) as u64;
        let draws = ((total as f64) * draw_frac) as u64;
        let h = Hypergeometric::new(total, tagged, draws);
        let mass: f64 = (h.support_min()..=h.support_max()).map(|k| h.pmf(k)).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_mean_matches(lambda in 0.01f64..40.0) {
        let p = Poisson::new(lambda);
        let mean: f64 = (0..400).map(|k| k as f64 * p.pmf(k)).sum();
        prop_assert!((mean - lambda).abs() < 1e-6 * (1.0 + lambda));
    }

    #[test]
    fn kahan_matches_exact_integer_sums(xs in proptest::collection::vec(-1_000i32..1_000, 0..400)) {
        let mut k = KahanSum::new();
        for &x in &xs {
            k.add(x as f64);
        }
        let exact: i64 = xs.iter().map(|&x| x as i64).sum();
        prop_assert_eq!(k.value(), exact as f64);
    }

    #[test]
    fn welford_mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!(w.mean() >= w.min() - 1e-9);
        prop_assert!(w.mean() <= w.max() + 1e-9);
        prop_assert!(w.variance() >= 0.0);
    }

    #[test]
    fn welford_merged_halves_equal_sequential_pass(xs in proptest::collection::vec(-1e4f64..1e4, 2..400), split_frac in 0.0f64..=1.0) {
        // Chan et al. pairwise combination: folding the two halves
        // separately and merging must reproduce the single sequential
        // pass (counts and extremes exactly, moments to fp tolerance).
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        let scale = 1.0 + whole.mean().abs();
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * scale);
        let vscale = 1.0 + whole.variance().abs();
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-8 * vscale);
        prop_assert!((a.std_err() - whole.std_err()).abs() < 1e-8 * vscale);
    }

    #[test]
    fn welford_merge_order_invariant(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split in 1usize..199) {
        prop_assume!(split < xs.len());
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    #[test]
    fn gauss_seidel_solves_diag_dominant(seed in 0u64..5_000, n in 2usize..25) {
        use numerics::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let mut t = Triplets::new(n, n);
        let mut dense = vec![vec![0.0; n]; n];
        for r in 0..n {
            let mut off = 0.0;
            for c in 0..n {
                if r != c && rng.next_f64() < 0.3 {
                    let v = rng.next_f64() * 2.0 - 1.0;
                    t.push(r, c, v);
                    dense[r][c] = v;
                    off += v.abs();
                }
            }
            let d = off + 0.5 + rng.next_f64();
            t.push(r, r, d);
            dense[r][r] = d;
        }
        let a = t.build();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let (x, rep) = gauss_seidel(&a, &b, &IterConfig::default());
        prop_assert!(rep.converged);
        let xd = dense_lu_solve(&dense, &b).expect("nonsingular");
        for (u, v) in x.iter().zip(&xd) {
            prop_assert!((u - v).abs() < 1e-6, "{} vs {}", u, v);
        }
    }

    #[test]
    fn csr_matvec_matches_dense(seed in 0u64..2_000, n in 1usize..20, m in 1usize..20) {
        use numerics::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let mut t = Triplets::new(n, m);
        let mut dense = vec![vec![0.0; m]; n];
        for r in 0..n {
            for c in 0..m {
                if rng.next_f64() < 0.4 {
                    let v = rng.next_f64() * 4.0 - 2.0;
                    t.push(r, c, v);
                    dense[r][c] += v;
                }
            }
        }
        let a = t.build();
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).cos()).collect();
        let y = a.matvec(&x);
        for r in 0..n {
            let exact: f64 = (0..m).map(|c| dense[r][c] * x[c]).sum();
            prop_assert!((y[r] - exact).abs() < 1e-10);
        }
    }

    #[test]
    fn golden_section_finds_quadratic_peak(center in -4.0f64..4.0) {
        let e = golden_section_max(-10.0, 10.0, 1e-9, |x| -(x - center) * (x - center));
        prop_assert!((e.x - center).abs() < 1e-5);
    }

    #[test]
    fn log_space_is_sorted_and_bounded(lo in 0.001f64..10.0, factor in 1.1f64..1000.0, n in 2usize..40) {
        let hi = lo * factor;
        let g = log_space(lo, hi, n);
        prop_assert_eq!(g.len(), n);
        for w in g.windows(2) {
            prop_assert!(w[0] < w[1] + 1e-15);
        }
        prop_assert!((g[0] - lo).abs() < 1e-9 * lo);
        prop_assert!((g[n - 1] - hi).abs() < 1e-9 * hi);
    }

    #[test]
    fn union_find_transitivity(n in 3usize..60, edges in proptest::collection::vec((0usize..60, 0usize..60), 0..120)) {
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            if a < n && b < n {
                uf.union(a, b);
            }
        }
        // labels partition the set consistently with connectivity
        let (labels, sizes) = uf.component_labels();
        prop_assert_eq!(sizes.iter().sum::<u32>() as usize, n);
        for &(a, b) in &edges {
            if a < n && b < n {
                prop_assert_eq!(labels[a], labels[b]);
            }
        }
    }
}
