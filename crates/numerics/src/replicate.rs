//! The shared replication engine behind every Monte-Carlo backend.
//!
//! Three simulators in this repository (SPN token game, protocol DES,
//! mobility-coupled DES) answer the same shape of question: run many
//! independent replications of a stochastic experiment and reduce them to
//! summary statistics. This module owns that loop once:
//!
//! * [`Replicate`] — the experiment: `run_one(seed) -> Outcome`, where the
//!   seed of replication `i` is always [`child_seed`]`(master, i)`.
//! * [`OutcomeSink`] — streaming, mergeable aggregation. Outcomes are
//!   folded as they arrive; no caller ever materializes a `Vec` of
//!   outcomes, so memory stays O(sink), independent of the replication
//!   count.
//! * [`SamplingPlan`] — how many replications: a fixed count, or
//!   sequential (adaptive) sampling that keeps spawning batches until the
//!   sink's primary confidence interval meets a relative-half-width
//!   target or a budget cap is reached.
//! * [`run_plan`] — the batch-parallel executor.
//!
//! # Determinism
//!
//! Results are **bit-identical** regardless of batch size or thread
//! partitioning. Two mechanisms guarantee it:
//!
//! 1. Replication `i` derives its RNG stream from the global index
//!    (`child_seed(master, i)`), so each outcome is a pure function of
//!    `(task, master_seed, i)` — never of scheduling.
//! 2. Aggregation follows a fixed chunk grid over the index space:
//!    indices `[64k, 64(k+1))` fold in order into a fresh per-chunk sink,
//!    and completed chunk sinks merge into the master **in chunk order**.
//!    The sequence of `record`/`merge` operations depends only on the
//!    total replication count — not on how adaptive rounds partition the
//!    index space, and not on which worker folded which chunk. An
//!    in-progress chunk is carried across rounds so a round boundary in
//!    the middle of a chunk does not change the operation sequence.
//!
//! Consequently `Adaptive` sampling that stops after `n` replications
//! produces exactly the state `Fixed(n)` would, and the proptests in
//! `tests/replicate_props.rs` pin this bit-for-bit.

use crate::rng::child_seed;
use rayon::prelude::*;

/// Aggregation chunk size of the fixed index grid (see module docs). A
/// constant — never a tuning knob — because changing it changes the
/// floating-point merge association and therefore the low-order bits.
const CHUNK: u64 = 64;

/// A replicable stochastic experiment.
///
/// Implementations must be pure per seed: `run_one(s)` called twice with
/// the same seed returns the same outcome.
pub trait Replicate: Sync {
    /// Result of a single replication.
    type Outcome: Send;

    /// Run one replication from the given RNG seed.
    fn run_one(&self, seed: u64) -> Self::Outcome;
}

/// Streaming, mergeable aggregation of replication outcomes.
///
/// `record` folds one outcome; `merge` combines two sinks built over
/// disjoint index ranges (self covering the earlier range). The executor
/// only merges complete, in-order chunks, so implementations may assume
/// `other` aggregates outcomes with strictly larger indices.
pub trait OutcomeSink<O>: Clone + Send {
    /// Fold one outcome into the aggregate.
    fn record(&mut self, outcome: O);

    /// Absorb a sink covering the immediately following index range.
    fn merge(&mut self, other: Self);

    /// Relative confidence-interval half-width of the sink's primary
    /// stopping metric, once estimable (`None` before that — e.g. fewer
    /// than two observations). Adaptive sampling stops when this reaches
    /// its target; a sink may return `Some(0.0)` to request an immediate
    /// stop (e.g. after a fatal per-replication error).
    fn precision(&self) -> Option<f64>;
}

/// How many replications to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingPlan {
    /// Exactly this many replications.
    Fixed(u64),
    /// Sequential sampling: run `min` replications, then batches of
    /// `batch` until the sink's [`OutcomeSink::precision`] is at or below
    /// `target_rel_halfwidth`, stopping at `max` regardless.
    Adaptive {
        /// Stop once the primary CI half-width divided by the point
        /// estimate reaches this.
        target_rel_halfwidth: f64,
        /// Replications before the first precision check.
        min: u64,
        /// Hard replication budget.
        max: u64,
        /// Replications added per round after `min`.
        batch: u64,
    },
}

impl SamplingPlan {
    /// Largest replication count the plan may spend.
    pub fn max_replications(&self) -> u64 {
        match *self {
            SamplingPlan::Fixed(n) => n,
            SamplingPlan::Adaptive { max, .. } => max,
        }
    }

    /// The plan with its replication budget capped at `cap` (adaptive
    /// plans keep their target and batch; `min` is clamped too).
    #[must_use]
    pub fn capped(&self, cap: u64) -> SamplingPlan {
        match *self {
            SamplingPlan::Fixed(n) => SamplingPlan::Fixed(n.min(cap)),
            SamplingPlan::Adaptive {
                target_rel_halfwidth,
                min,
                max,
                batch,
            } => SamplingPlan::Adaptive {
                target_rel_halfwidth,
                min: min.min(cap),
                max: max.min(cap),
                batch,
            },
        }
    }

    /// Check the plan for internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SamplingPlan::Fixed(0) => Err("replications must be positive".into()),
            SamplingPlan::Fixed(_) => Ok(()),
            SamplingPlan::Adaptive {
                target_rel_halfwidth,
                min,
                max,
                batch,
            } => {
                if !target_rel_halfwidth.is_finite() || target_rel_halfwidth <= 0.0 {
                    return Err(format!(
                        "adaptive target_rel_halfwidth must be a positive finite number, \
                         got {target_rel_halfwidth}"
                    ));
                }
                if min == 0 {
                    return Err("adaptive min must be positive".into());
                }
                if min > max {
                    return Err(format!("adaptive min {min} exceeds max {max}"));
                }
                if batch == 0 {
                    return Err("adaptive batch must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// Result of driving a [`SamplingPlan`] to completion.
#[derive(Debug, Clone)]
pub struct Completed<S> {
    /// The final aggregate.
    pub sink: S,
    /// Replications actually run.
    pub replications: u64,
    /// For adaptive plans: whether the precision target was met (`false`
    /// means the budget was exhausted first). `None` for fixed plans.
    pub target_met: Option<bool>,
}

/// Aggregation state across adaptive rounds: merged complete chunks plus
/// the in-progress chunk (see the module docs on determinism).
struct Stream<S> {
    master: Option<S>,
    partial: Option<S>,
    next: u64,
}

impl<S> Stream<S> {
    fn new() -> Self {
        Self {
            master: None,
            partial: None,
            next: 0,
        }
    }

    fn absorb_chunk<O>(&mut self, chunk: S)
    where
        S: OutcomeSink<O>,
    {
        match &mut self.master {
            Some(m) => m.merge(chunk),
            None => self.master = Some(chunk),
        }
    }

    /// The aggregate over everything recorded so far (clones; used for
    /// mid-run precision checks).
    fn snapshot<O>(&self) -> Option<S>
    where
        S: OutcomeSink<O>,
    {
        match (&self.master, &self.partial) {
            (Some(m), Some(p)) => {
                let mut out = m.clone();
                out.merge(p.clone());
                Some(out)
            }
            (Some(m), None) => Some(m.clone()),
            (None, Some(p)) => Some(p.clone()),
            (None, None) => None,
        }
    }

    /// Consume the state into the final aggregate.
    fn finish<O>(self) -> Option<S>
    where
        S: OutcomeSink<O>,
    {
        match (self.master, self.partial) {
            (Some(mut m), Some(p)) => {
                m.merge(p);
                Some(m)
            }
            (Some(m), None) => Some(m),
            (None, p) => p,
        }
    }
}

/// Extend the stream with replications `[state.next, to)` of `task`.
fn extend<R, S, F>(task: &R, master_seed: u64, state: &mut Stream<S>, to: u64, new_sink: &F)
where
    R: Replicate + ?Sized,
    S: OutcomeSink<R::Outcome>,
    F: Fn() -> S + Sync,
{
    // 1. Finish the chunk already in progress (sequential records on the
    //    carried-over sink keep the operation sequence identical to a
    //    single uninterrupted run).
    if !state.next.is_multiple_of(CHUNK) && state.next < to {
        let b = to.min((state.next / CHUNK + 1) * CHUNK);
        let outcomes: Vec<R::Outcome> = (state.next..b)
            .into_par_iter()
            .map(|i| task.run_one(child_seed(master_seed, i)))
            .collect();
        let partial = state
            .partial
            .as_mut()
            .expect("mid-chunk position implies an in-progress sink");
        for o in outcomes {
            partial.record(o);
        }
        state.next = b;
        if b.is_multiple_of(CHUNK) {
            let full = state.partial.take().expect("just recorded into it");
            state.absorb_chunk(full);
        }
    }
    // 2. Remaining grid-aligned chunks fold independently (each worker
    //    owns a chunk and its private sink) and merge in chunk order.
    if state.next < to {
        let pieces: Vec<(u64, u64)> = (state.next..to)
            .step_by(CHUNK as usize)
            .map(|a| (a, to.min(a + CHUNK)))
            .collect();
        let sinks: Vec<S> = pieces
            .par_iter()
            .map(|&(a, b)| {
                let mut s = new_sink();
                for i in a..b {
                    s.record(task.run_one(child_seed(master_seed, i)));
                }
                s
            })
            .collect();
        for (&(_, b), s) in pieces.iter().zip(sinks) {
            if b.is_multiple_of(CHUNK) {
                state.absorb_chunk(s);
            } else {
                // Only the trailing piece can be partial; it becomes the
                // carried-over in-progress chunk.
                state.partial = Some(s);
            }
        }
        state.next = to;
    }
}

/// Drive `plan` over `task`, folding outcomes into sinks produced by
/// `new_sink`. See the module docs for the determinism guarantees.
///
/// Replication `i` always runs with seed `child_seed(master_seed, i)`, so
/// a fixed and an adaptive run agree bit-for-bit on their shared prefix.
///
/// # Panics
/// Panics on an invalid plan (call [`SamplingPlan::validate`] first when
/// the plan comes from external input).
pub fn run_plan<R, S, F>(
    task: &R,
    plan: &SamplingPlan,
    master_seed: u64,
    new_sink: F,
) -> Completed<S>
where
    R: Replicate + ?Sized,
    S: OutcomeSink<R::Outcome>,
    F: Fn() -> S + Sync,
{
    run_plan_observed(task, plan, master_seed, new_sink, &mut |_, _| {})
}

/// [`run_plan`] with a progress observer: after each sampling round the
/// observer receives `(replications_so_far, precision)` — one call per
/// adaptive round (including the initial `min` round) and a single final
/// call for fixed plans. Observation never changes what runs: the
/// replication stream and the aggregation order are exactly those of the
/// unobserved executor, so results stay bit-identical. The observer runs
/// on the driving thread, between rounds.
///
/// # Panics
/// Panics on an invalid plan (call [`SamplingPlan::validate`] first when
/// the plan comes from external input).
pub fn run_plan_observed<R, S, F>(
    task: &R,
    plan: &SamplingPlan,
    master_seed: u64,
    new_sink: F,
    observe: &mut dyn FnMut(u64, Option<f64>),
) -> Completed<S>
where
    R: Replicate + ?Sized,
    S: OutcomeSink<R::Outcome>,
    F: Fn() -> S + Sync,
{
    plan.validate().expect("invalid sampling plan");
    let mut state: Stream<S> = Stream::new();
    match *plan {
        SamplingPlan::Fixed(n) => {
            extend(task, master_seed, &mut state, n, &new_sink);
            let p = state.snapshot::<R::Outcome>().expect("n > 0").precision();
            observe(n, p);
            Completed {
                sink: state.finish::<R::Outcome>().expect("n > 0"),
                replications: n,
                target_met: None,
            }
        }
        SamplingPlan::Adaptive {
            target_rel_halfwidth,
            min,
            max,
            batch,
        } => {
            let mut n = min.min(max);
            extend(task, master_seed, &mut state, n, &new_sink);
            loop {
                let p = state.snapshot::<R::Outcome>().expect("n > 0").precision();
                observe(n, p);
                let met = p.is_some_and(|p| p <= target_rel_halfwidth);
                if met || n >= max {
                    return Completed {
                        sink: state.finish::<R::Outcome>().expect("n > 0"),
                        replications: n,
                        target_met: Some(met),
                    };
                }
                n = (n + batch).min(max);
                extend(task, master_seed, &mut state, n, &new_sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::stats::Welford;

    /// Toy experiment: one uniform draw per replication.
    struct Uniform;

    impl Replicate for Uniform {
        type Outcome = f64;
        fn run_one(&self, seed: u64) -> f64 {
            SplitMix64::new(seed).next_f64()
        }
    }

    /// Welford-over-outcomes sink with a 95%-style precision readout.
    #[derive(Clone)]
    struct MeanSink(Welford);

    impl MeanSink {
        fn new() -> Self {
            Self(Welford::new())
        }
    }

    impl OutcomeSink<f64> for MeanSink {
        fn record(&mut self, x: f64) {
            self.0.push(x);
        }
        fn merge(&mut self, other: Self) {
            self.0.merge(&other.0);
        }
        fn precision(&self) -> Option<f64> {
            (self.0.count() >= 2).then(|| self.0.confidence_interval(0.95).relative_half_width())
        }
    }

    #[test]
    fn fixed_runs_exactly_n() {
        let done = run_plan(&Uniform, &SamplingPlan::Fixed(130), 9, MeanSink::new);
        assert_eq!(done.replications, 130);
        assert_eq!(done.sink.0.count(), 130);
        assert_eq!(done.target_met, None);
        // uniform mean is near 1/2
        assert!((done.sink.0.mean() - 0.5).abs() < 0.2);
    }

    #[test]
    fn fixed_is_deterministic() {
        let a = run_plan(&Uniform, &SamplingPlan::Fixed(200), 7, MeanSink::new);
        let b = run_plan(&Uniform, &SamplingPlan::Fixed(200), 7, MeanSink::new);
        assert_eq!(a.sink.0, b.sink.0);
        // and a different master seed changes the stream
        let c = run_plan(&Uniform, &SamplingPlan::Fixed(200), 8, MeanSink::new);
        assert_ne!(a.sink.0.mean(), c.sink.0.mean());
    }

    #[test]
    fn adaptive_stops_when_target_met() {
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.25,
            min: 16,
            max: 100_000,
            batch: 16,
        };
        let done = run_plan(&Uniform, &plan, 3, MeanSink::new);
        assert_eq!(done.target_met, Some(true));
        assert!(done.replications < 100_000, "{}", done.replications);
        let p = done.sink.precision().unwrap();
        assert!(p <= 0.25, "claimed target met but precision is {p}");
    }

    #[test]
    fn observer_sees_each_round_and_does_not_perturb_results() {
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-9, // unreachable: every round observed
            min: 10,
            max: 50,
            batch: 20,
        };
        let mut rounds: Vec<(u64, Option<f64>)> = Vec::new();
        let observed = run_plan_observed(&Uniform, &plan, 3, MeanSink::new, &mut |n, p| {
            rounds.push((n, p));
        });
        let plain = run_plan(&Uniform, &plan, 3, MeanSink::new);
        assert_eq!(observed.sink.0, plain.sink.0);
        assert_eq!(observed.replications, plain.replications);
        assert_eq!(
            rounds.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![10, 30, 50]
        );
        assert!(rounds.iter().all(|&(_, p)| p.is_some()));
        // last observation matches the completed sink's precision
        assert_eq!(rounds.last().unwrap().1, observed.sink.precision());
    }

    #[test]
    fn observer_fires_once_for_fixed_plans() {
        let mut rounds = Vec::new();
        let done = run_plan_observed(
            &Uniform,
            &SamplingPlan::Fixed(64),
            9,
            MeanSink::new,
            &mut |n, p| {
                rounds.push((n, p));
            },
        );
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].0, 64);
        assert_eq!(rounds[0].1, done.sink.precision());
    }

    #[test]
    fn capped_below_first_batch_runs_only_the_cap() {
        // Regression: a replication budget smaller than the adaptive plan's
        // first batch must clamp that batch, not silently run all of `min`.
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-9,
            min: 100,
            max: 400,
            batch: 100,
        };
        let capped = plan.capped(7);
        capped.validate().unwrap();
        let mut rounds = Vec::new();
        let done = run_plan_observed(&Uniform, &capped, 3, MeanSink::new, &mut |n, p| {
            rounds.push((n, p));
        });
        assert_eq!(done.replications, 7);
        assert_eq!(done.sink.0.count(), 7);
        assert_eq!(done.target_met, Some(false));
        assert_eq!(rounds.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn adaptive_reports_budget_exhaustion() {
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-9, // unreachable
            min: 10,
            max: 50,
            batch: 20,
        };
        let done = run_plan(&Uniform, &plan, 3, MeanSink::new);
        assert_eq!(done.replications, 50);
        assert_eq!(done.target_met, Some(false));
    }

    #[test]
    fn adaptive_prefix_equals_fixed_bit_for_bit() {
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-9,
            min: 37, // deliberately not a chunk multiple
            max: 201,
            batch: 41,
        };
        let adaptive = run_plan(&Uniform, &plan, 11, MeanSink::new);
        let fixed = run_plan(
            &Uniform,
            &SamplingPlan::Fixed(adaptive.replications),
            11,
            MeanSink::new,
        );
        assert_eq!(adaptive.sink.0, fixed.sink.0);
    }

    #[test]
    fn plan_validation_catches_bad_plans() {
        assert!(SamplingPlan::Fixed(0).validate().is_err());
        assert!(SamplingPlan::Fixed(1).validate().is_ok());
        let bad_target = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.0,
            min: 1,
            max: 2,
            batch: 1,
        };
        assert!(bad_target.validate().is_err());
        let min_over_max = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.1,
            min: 10,
            max: 5,
            batch: 1,
        };
        assert!(min_over_max.validate().is_err());
        let zero_batch = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.1,
            min: 1,
            max: 5,
            batch: 0,
        };
        assert!(zero_batch.validate().is_err());
        let zero_min = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.1,
            min: 0,
            max: 5,
            batch: 1,
        };
        assert!(zero_min.validate().is_err());
    }

    #[test]
    fn capped_clamps_budgets() {
        assert_eq!(SamplingPlan::Fixed(100).capped(30), SamplingPlan::Fixed(30));
        let a = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.1,
            min: 50,
            max: 400,
            batch: 25,
        };
        match a.capped(40) {
            SamplingPlan::Adaptive { min, max, .. } => {
                assert_eq!((min, max), (40, 40));
            }
            SamplingPlan::Fixed(_) => panic!("capping must not change the plan kind"),
        }
        assert_eq!(a.max_replications(), 400);
    }
}
