//! Poisson weight computation for uniformization (Jensen's method), in the
//! spirit of Fox & Glynn (1988).
//!
//! Given a Poisson rate `lambda = q·t` and a truncation error `epsilon`, we
//! return left/right truncation points `l, r` and the (normalized) weights
//! `w_k = P[Poisson(lambda) = k]` for `k ∈ [l, r]` such that the truncated
//! mass exceeds `1 − epsilon`. Weights are computed by recurrence from the
//! mode outward, which is stable for the `lambda` values (≤ ~1e6) the
//! transient solver uses.

use crate::special::ln_factorial;

/// Truncated Poisson weights for uniformization.
#[derive(Debug, Clone)]
pub struct PoissonWeights {
    /// Left truncation point (inclusive).
    pub left: usize,
    /// Right truncation point (inclusive).
    pub right: usize,
    /// `weights[i] = P[Poisson = left + i]`, renormalized to sum to 1.
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// Compute weights for `Poisson(lambda)` with total truncated mass at
    /// least `1 − epsilon`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative/non-finite or `epsilon` not in (0,1).
    pub fn compute(lambda: f64, epsilon: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "bad lambda {lambda}");
        assert!(epsilon > 0.0 && epsilon < 1.0, "bad epsilon {epsilon}");
        if lambda == 0.0 {
            return Self {
                left: 0,
                right: 0,
                weights: vec![1.0],
            };
        }
        let mode = lambda.floor() as usize;
        // ln pmf at the mode (guards underflow for large lambda).
        let ln_pmf_mode = mode as f64 * lambda.ln() - lambda - ln_factorial(mode as u64);

        // Walk right from the mode until the cumulative tail bound is hit.
        // pmf(k+1) = pmf(k) * lambda / (k+1)
        let mut right_weights = Vec::with_capacity(64);
        let mut w = 1.0_f64; // scaled: pmf(k)/pmf(mode)
        right_weights.push(w);
        let mut k = mode;
        // Conservative stop: when scaled weight is far below eps relative to
        // the accumulated mass and we've passed ~6 standard deviations.
        let sigma = lambda.sqrt().max(1.0);
        let hard_right = mode + (10.0 * sigma) as usize + 30;
        while k < hard_right {
            w *= lambda / (k + 1) as f64;
            k += 1;
            right_weights.push(w);
            if w < epsilon * 1e-4 && (k - mode) as f64 > 6.0 * sigma {
                break;
            }
        }
        let right = k;

        // Walk left from the mode.
        let mut left_weights = Vec::with_capacity(64);
        let mut w = 1.0_f64;
        let mut k = mode;
        while k > 0 {
            w *= k as f64 / lambda;
            k -= 1;
            left_weights.push(w);
            if w < epsilon * 1e-4 && (mode - k) as f64 > 6.0 * sigma {
                break;
            }
        }
        let left = k;

        // Assemble in order [left..=right], scale back by pmf(mode) in log
        // space to avoid overflow, then renormalize.
        let scale = ln_pmf_mode.exp();
        let mut weights: Vec<f64> = left_weights
            .iter()
            .rev()
            .chain(right_weights.iter())
            .map(|sw| sw * scale)
            .collect();
        let total: f64 = weights.iter().sum();
        assert!(
            total > 1.0 - 1e-3,
            "PoissonWeights: truncated mass {total} too small for lambda {lambda}"
        );
        for w in &mut weights {
            *w /= total;
        }
        Self {
            left,
            right,
            weights,
        }
    }

    /// Weight of `k`, zero outside the truncation window.
    pub fn weight(&self, k: usize) -> f64 {
        if k < self.left || k > self.right {
            0.0
        } else {
            self.weights[k - self.left]
        }
    }

    /// Number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when only a single term is retained (lambda = 0 case).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Poisson;

    #[test]
    fn zero_lambda_is_point_mass() {
        let w = PoissonWeights::compute(0.0, 1e-10);
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn weights_match_pmf_small_lambda() {
        let lambda = 4.2;
        let w = PoissonWeights::compute(lambda, 1e-12);
        let p = Poisson::new(lambda);
        for k in w.left..=w.right {
            let exact = p.pmf(k as u64);
            assert!(
                (w.weight(k) - exact).abs() < 1e-9,
                "k={k}: {} vs {exact}",
                w.weight(k)
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.1, 1.0, 17.0, 300.0, 12_345.0] {
            let w = PoissonWeights::compute(lambda, 1e-10);
            let s: f64 = w.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "lambda={lambda}: sum {s}");
        }
    }

    #[test]
    fn window_covers_mean() {
        for &lambda in &[0.5, 8.0, 1_000.0, 250_000.0] {
            let w = PoissonWeights::compute(lambda, 1e-9);
            let mean = lambda as usize;
            assert!(w.left <= mean && mean <= w.right, "lambda={lambda}");
            // window should be O(sqrt(lambda)) wide, not O(lambda)
            let width = (w.right - w.left) as f64;
            assert!(
                width <= 25.0 * lambda.sqrt() + 80.0,
                "lambda={lambda}: width {width}"
            );
        }
    }

    #[test]
    fn large_lambda_no_overflow() {
        let w = PoissonWeights::compute(1.0e6, 1e-9);
        assert!(w.weights.iter().all(|x| x.is_finite()));
        let s: f64 = w.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        PoissonWeights::compute(1.0, 0.0);
    }
}
