//! Poisson weight computation for uniformization (Jensen's method), in the
//! spirit of Fox & Glynn (1988).
//!
//! Given a Poisson rate `lambda = q·t` and a truncation error `epsilon`, we
//! return left/right truncation points `l, r` and the (normalized) weights
//! `w_k = P[Poisson(lambda) = k]` for `k ∈ [l, r]` such that the truncated
//! mass exceeds `1 − epsilon`. Weights are computed by recurrence from the
//! mode outward, which is stable for the `lambda` values (≤ ~1e6) the
//! transient solver uses.

use crate::special::ln_factorial;

/// Truncated Poisson weights for uniformization.
#[derive(Debug, Clone)]
pub struct PoissonWeights {
    /// Left truncation point (inclusive).
    pub left: usize,
    /// Right truncation point (inclusive).
    pub right: usize,
    /// `weights[i] = P[Poisson = left + i]`, renormalized to sum to 1.
    pub weights: Vec<f64>,
    /// Left-walk scratch reused across [`PoissonWeights::compute_into`]
    /// calls so per-segment recomputation performs no allocation once the
    /// buffers have grown to the widest window seen.
    scratch: Vec<f64>,
}

impl PoissonWeights {
    /// Compute weights for `Poisson(lambda)` with total truncated mass at
    /// least `1 − epsilon`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative/non-finite or `epsilon` not in (0,1).
    pub fn compute(lambda: f64, epsilon: f64) -> Self {
        let mut out = Self {
            left: 0,
            right: 0,
            weights: Vec::new(),
            scratch: Vec::new(),
        };
        out.compute_into(lambda, epsilon);
        out
    }

    /// Recompute the window in place, reusing the internal buffers. The
    /// resulting weights are bit-identical to a fresh
    /// [`PoissonWeights::compute`] with the same arguments.
    ///
    /// # Panics
    /// Panics if `lambda` is negative/non-finite or `epsilon` not in (0,1).
    pub fn compute_into(&mut self, lambda: f64, epsilon: f64) {
        assert!(lambda.is_finite() && lambda >= 0.0, "bad lambda {lambda}");
        assert!(epsilon > 0.0 && epsilon < 1.0, "bad epsilon {epsilon}");
        self.weights.clear();
        self.scratch.clear();
        if lambda == 0.0 {
            self.left = 0;
            self.right = 0;
            self.weights.push(1.0);
            return;
        }
        let mode = lambda.floor() as usize;
        // ln pmf at the mode (guards underflow for large lambda).
        let ln_pmf_mode = mode as f64 * lambda.ln() - lambda - ln_factorial(mode as u64);

        // Walk right from the mode until the cumulative tail bound is hit.
        // pmf(k+1) = pmf(k) * lambda / (k+1)
        let mut w = 1.0_f64; // scaled: pmf(k)/pmf(mode)
        self.weights.push(w);
        let mut k = mode;
        // Conservative stop: when scaled weight is far below eps relative to
        // the accumulated mass and we've passed ~6 standard deviations.
        let sigma = lambda.sqrt().max(1.0);
        let hard_right = mode + (10.0 * sigma) as usize + 30;
        while k < hard_right {
            w *= lambda / (k + 1) as f64;
            k += 1;
            self.weights.push(w);
            if w < epsilon * 1e-4 && (k - mode) as f64 > 6.0 * sigma {
                break;
            }
        }
        let right = k;

        // Walk left from the mode.
        let mut w = 1.0_f64;
        let mut k = mode;
        while k > 0 {
            w *= k as f64 / lambda;
            k -= 1;
            self.scratch.push(w);
            if w < epsilon * 1e-4 && (mode - k) as f64 > 6.0 * sigma {
                break;
            }
        }
        let left = k;

        // Assemble in order [left..=right]: the left walk produced
        // `mode-1, mode-2, …` so append it reversed (ascending) and rotate
        // it ahead of the right part, then scale back by pmf(mode) in log
        // space to avoid overflow, and renormalize.
        let l_len = self.scratch.len();
        for i in (0..l_len).rev() {
            let sw = self.scratch[i];
            self.weights.push(sw);
        }
        self.weights.rotate_right(l_len);
        let scale = ln_pmf_mode.exp();
        for w in &mut self.weights {
            *w *= scale;
        }
        let total: f64 = self.weights.iter().sum();
        assert!(
            total > 1.0 - 1e-3,
            "PoissonWeights: truncated mass {total} too small for lambda {lambda}"
        );
        for w in &mut self.weights {
            *w /= total;
        }
        self.left = left;
        self.right = right;
    }

    /// Weight of `k`, zero outside the truncation window.
    pub fn weight(&self, k: usize) -> f64 {
        if k < self.left || k > self.right {
            0.0
        } else {
            self.weights[k - self.left]
        }
    }

    /// Number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when only a single term is retained (lambda = 0 case).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Poisson;

    #[test]
    fn zero_lambda_is_point_mass() {
        let w = PoissonWeights::compute(0.0, 1e-10);
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn weights_match_pmf_small_lambda() {
        let lambda = 4.2;
        let w = PoissonWeights::compute(lambda, 1e-12);
        let p = Poisson::new(lambda);
        for k in w.left..=w.right {
            let exact = p.pmf(k as u64);
            assert!(
                (w.weight(k) - exact).abs() < 1e-9,
                "k={k}: {} vs {exact}",
                w.weight(k)
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.1, 1.0, 17.0, 300.0, 12_345.0] {
            let w = PoissonWeights::compute(lambda, 1e-10);
            let s: f64 = w.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "lambda={lambda}: sum {s}");
        }
    }

    #[test]
    fn window_covers_mean() {
        for &lambda in &[0.5, 8.0, 1_000.0, 250_000.0] {
            let w = PoissonWeights::compute(lambda, 1e-9);
            let mean = lambda as usize;
            assert!(w.left <= mean && mean <= w.right, "lambda={lambda}");
            // window should be O(sqrt(lambda)) wide, not O(lambda)
            let width = (w.right - w.left) as f64;
            assert!(
                width <= 25.0 * lambda.sqrt() + 80.0,
                "lambda={lambda}: width {width}"
            );
        }
    }

    #[test]
    fn large_lambda_no_overflow() {
        let w = PoissonWeights::compute(1.0e6, 1e-9);
        assert!(w.weights.iter().all(|x| x.is_finite()));
        let s: f64 = w.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        PoissonWeights::compute(1.0, 0.0);
    }

    #[test]
    fn compute_into_reuse_is_bit_identical() {
        let mut reused = PoissonWeights::compute(500.0, 1e-10);
        for &lambda in &[0.0, 3.5, 250.0, 12_345.0] {
            let fresh = PoissonWeights::compute(lambda, 1e-10);
            reused.compute_into(lambda, 1e-10);
            assert_eq!(reused.left, fresh.left, "lambda={lambda}");
            assert_eq!(reused.right, fresh.right, "lambda={lambda}");
            assert_eq!(reused.weights, fresh.weights, "lambda={lambda}");
        }
    }
}
