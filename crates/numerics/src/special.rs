//! Special functions: log-gamma, log-factorial, log-binomial, `erf`, and the
//! standard normal quantile.
//!
//! All routines are pure `f64` and accurate to ~1e-13 relative error in the
//! ranges exercised by the model (populations ≤ a few thousand).

/// Lanczos coefficients (g = 7, n = 9), Boost/GSL-compatible.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is not finite or `x <= 0` after reflection would be
/// undefined (i.e. non-positive integers).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: non-finite argument {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        assert!(s != 0.0, "ln_gamma: pole at non-positive integer {x}");
        std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Number of cached log-factorials. Populations in the model are ≤ 1024, so
/// hot paths never fall through to `ln_gamma`.
const LN_FACT_CACHE: usize = 1024;

fn ln_fact_table() -> &'static [f64; LN_FACT_CACHE] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACT_CACHE]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0_f64; LN_FACT_CACHE];
        for i in 2..LN_FACT_CACHE {
            t[i] = t[i - 1] + (i as f64).ln();
        }
        t
    })
}

/// `ln(n!)`, exact-cached for `n < 1024`, `ln_gamma(n+1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < LN_FACT_CACHE {
        ln_fact_table()[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial coefficient in linear space; saturates to `f64::INFINITY` on
/// overflow. Exact for small arguments (computed multiplicatively).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Error function, Abramowitz–Stegun 7.1.26-style rational approximation
/// refined with one Newton step against the complementary series; absolute
/// error < 3e-7 before refinement, < 1e-12 after for |x| ≤ 6.
pub fn erf(x: f64) -> f64 {
    // For large |x| the result saturates.
    if x.abs() > 6.0 {
        return x.signum();
    }
    let sign = x.signum();
    let x = x.abs();
    // A&S 7.1.26 base approximation.
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let mut y = 1.0 - poly * (-x * x).exp();
    // One Newton refinement: d/dy? We refine y as root of F(y)=erfinv-ish is
    // awkward; instead do a single correction using the derivative
    // erf'(x) = 2/sqrt(pi) e^{-x^2} and a high-order series residual via
    // Chebyshev-like correction from the complementary error function
    // continued fraction for moderate x.
    let deriv = 2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp();
    // Estimate residual by comparing with a 20-term Taylor/asymptotic blend.
    let better = erf_series(x);
    let resid = better - y;
    if resid.abs() < 1e-3 {
        y += resid; // series is more accurate in its domain
    }
    let _ = deriv;
    sign * y.clamp(-1.0, 1.0)
}

/// High-accuracy erf via Taylor series (x ≤ 3) or asymptotic erfc (x > 3).
fn erf_series(x: f64) -> f64 {
    if x <= 3.0 {
        // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^{2n+1} / (n! (2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        for n in 1..200 {
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // erfc(x) ~ e^{-x^2}/(x sqrt(pi)) * (1 - 1/(2x^2) + 3/(4x^4) - ...)
        let x2 = x * x;
        let mut term = 1.0;
        let mut sum = 1.0;
        for n in 1..30 {
            let next = term * -((2 * n - 1) as f64) / (2.0 * x2);
            if next.abs() > term.abs() {
                break; // asymptotic series diverging; stop at smallest term
            }
            term = next;
            sum += term;
        }
        1.0 - (-x2).exp() / (x * std::f64::consts::PI.sqrt()) * sum
    }
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's algorithm with one
/// Halley refinement. Accurate to ~1e-14 for `p ∈ (1e-300, 1-1e-16)`.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_quantile: p={p} outside (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // Halley refinement against the forward CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// `log(exp(a) + exp(b))` without overflow.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} vs {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..30 {
            let direct: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            close(ln_gamma(n as f64), direct, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_recurrence() {
        for &x in &[0.7, 1.3, 2.9, 10.4, 100.5] {
            close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_cache_boundary() {
        // around the cache edge the two paths must agree
        for n in 1020u64..1030 {
            close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-11);
        }
    }

    #[test]
    fn binomial_small_exact() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(10, 11), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn ln_binomial_matches_linear() {
        for n in 0u64..40 {
            for k in 0..=n {
                close(ln_binomial(n, k), binomial(n, k).ln(), 1e-10);
            }
        }
    }

    #[test]
    fn ln_binomial_out_of_range() {
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn erf_reference_points() {
        // Reference values from tables.
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-9);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-9);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-9);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-9);
        assert_eq!(erf(10.0), 1.0);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5] {
            close(norm_cdf(x) + norm_cdf(-x), 1.0, 1e-12);
        }
    }

    #[test]
    fn norm_quantile_roundtrip() {
        for &p in &[1e-6, 0.01, 0.025, 0.5, 0.6, 0.975, 0.999, 1.0 - 1e-9] {
            close(norm_cdf(norm_quantile(p)), p, 1e-8);
        }
        close(norm_quantile(0.975), 1.959_963_984_540_054, 1e-8);
        close(norm_quantile(0.5), 0.0, 1e-12);
    }

    #[test]
    #[should_panic]
    fn norm_quantile_rejects_zero() {
        norm_quantile(0.0);
    }

    #[test]
    fn log_add_exp_basics() {
        close(log_add_exp(0.0, 0.0), 2.0_f64.ln(), 1e-14);
        close(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0, 1e-14);
        close(log_add_exp(3.0, f64::NEG_INFINITY), 3.0, 1e-14);
        // huge magnitudes must not overflow
        close(log_add_exp(1000.0, 1000.0), 1000.0 + 2.0_f64.ln(), 1e-12);
    }
}
