//! Linear solvers for the sparse systems produced by CTMC analysis.
//!
//! The mean-time-to-absorption system `Qᵀ_TT σ = −π₀` has a weakly
//! diagonally dominant, irreducibly structured matrix, for which the classic
//! stationary iterations converge reliably. We provide Jacobi, Gauss–Seidel
//! and SOR (the ablation benchmark compares them), plus a dense
//! partial-pivot LU fallback used for small systems and for verifying the
//! iterative results in tests, and power iteration for stationary
//! distributions of stochastic matrices.

use crate::sparse::Csr;

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual max-norm `‖Ax − b‖∞`.
    pub residual: f64,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Configuration shared by the stationary iterative solvers.
#[derive(Debug, Clone, Copy)]
pub struct IterConfig {
    /// Absolute residual tolerance in max-norm.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// SOR relaxation factor (ignored by Jacobi/Gauss–Seidel).
    pub omega: f64,
}

impl Default for IterConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_iterations: 100_000,
            omega: 1.2,
        }
    }
}

fn residual_inf(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
    let mut worst = 0.0_f64;
    for r in 0..a.rows() {
        let mut acc = 0.0;
        for (c, v) in a.row(r) {
            acc += v * x[c];
        }
        worst = worst.max((acc - b[r]).abs());
    }
    worst
}

/// Jacobi iteration for `A x = b`.
///
/// # Panics
/// Panics on dimension mismatch or a zero diagonal entry.
pub fn jacobi(a: &Csr, b: &[f64], cfg: &IterConfig) -> (Vec<f64>, SolveReport) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "jacobi: matrix must be square");
    assert_eq!(b.len(), n, "jacobi: rhs dimension mismatch");
    let diag: Vec<f64> = (0..n).map(|r| a.get(r, r)).collect();
    assert!(diag.iter().all(|&d| d != 0.0), "jacobi: zero diagonal");
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for it in 0..cfg.max_iterations {
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            next[r] = acc / diag[r];
        }
        std::mem::swap(&mut x, &mut next);
        if it % 8 == 0 {
            let res = residual_inf(a, &x, b);
            if res <= cfg.tolerance {
                return (
                    x,
                    SolveReport {
                        iterations: it + 1,
                        residual: res,
                        converged: true,
                    },
                );
            }
        }
    }
    let res = residual_inf(a, &x, b);
    (
        x,
        SolveReport {
            iterations: cfg.max_iterations,
            residual: res,
            converged: res <= cfg.tolerance,
        },
    )
}

/// Gauss–Seidel iteration (SOR with ω = 1).
pub fn gauss_seidel(a: &Csr, b: &[f64], cfg: &IterConfig) -> (Vec<f64>, SolveReport) {
    let cfg = IterConfig { omega: 1.0, ..*cfg };
    sor(a, b, &cfg)
}

/// Successive over-relaxation for `A x = b`.
///
/// # Panics
/// Panics on dimension mismatch, zero diagonal, or ω outside (0, 2).
pub fn sor(a: &Csr, b: &[f64], cfg: &IterConfig) -> (Vec<f64>, SolveReport) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "sor: matrix must be square");
    assert_eq!(b.len(), n, "sor: rhs dimension mismatch");
    assert!(
        cfg.omega > 0.0 && cfg.omega < 2.0,
        "sor: omega {} outside (0,2)",
        cfg.omega
    );
    let diag: Vec<f64> = (0..n).map(|r| a.get(r, r)).collect();
    assert!(diag.iter().all(|&d| d != 0.0), "sor: zero diagonal");
    let mut x = vec![0.0; n];
    for it in 0..cfg.max_iterations {
        let mut delta_max = 0.0_f64;
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            let gs = acc / diag[r];
            let new = x[r] + cfg.omega * (gs - x[r]);
            delta_max = delta_max.max((new - x[r]).abs());
            x[r] = new;
        }
        // Cheap update-based check first; confirm with a true residual.
        if delta_max <= cfg.tolerance {
            let res = residual_inf(a, &x, b);
            if res <= cfg.tolerance.max(1e-10) {
                return (
                    x,
                    SolveReport {
                        iterations: it + 1,
                        residual: res,
                        converged: true,
                    },
                );
            }
        }
    }
    let res = residual_inf(a, &x, b);
    (
        x,
        SolveReport {
            iterations: cfg.max_iterations,
            residual: res,
            converged: res <= cfg.tolerance,
        },
    )
}

/// Dense LU with partial pivoting. Returns `None` for a singular matrix.
///
/// Intended for small systems (n ≤ a few thousand) and for validating the
/// iterative solvers; O(n³).
pub fn dense_lu_solve(a_dense: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a_dense.len();
    if n == 0 {
        return Some(Vec::new());
    }
    assert!(
        a_dense.iter().all(|row| row.len() == n),
        "dense_lu: ragged matrix"
    );
    assert_eq!(b.len(), n, "dense_lu: rhs dimension mismatch");
    let mut a: Vec<Vec<f64>> = a_dense.to_vec();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // pivot
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("NaN in LU"))
            .expect("non-empty range");
        if pivot_val < 1e-300 {
            return None;
        }
        a.swap(col, pivot_row);
        x.swap(col, pivot_row);
        let inv = 1.0 / a[col][col];
        for r in col + 1..n {
            let f = a[r][col] * inv;
            if f == 0.0 {
                continue;
            }
            a[r][col] = 0.0;
            for c in col + 1..n {
                let v = a[col][c];
                a[r][c] -= f * v;
            }
            x[r] -= f * x[col];
        }
    }
    // back substitution
    for col in (0..n).rev() {
        x[col] /= a[col][col];
        let xc = x[col];
        for r in 0..col {
            x[r] -= a[r][col] * xc;
        }
    }
    Some(x)
}

/// Solve `A x = b` choosing a method automatically: Gauss–Seidel first,
/// dense LU fallback if it fails to converge and the system is small enough.
///
/// Returns the solution and the iterative report (the report's `converged`
/// is `true` when either path succeeded).
pub fn solve_auto(a: &Csr, b: &[f64], cfg: &IterConfig) -> (Vec<f64>, SolveReport) {
    let (x, rep) = gauss_seidel(a, b, cfg);
    if rep.converged {
        return (x, rep);
    }
    if a.rows() <= 4096 {
        if let Some(x) = dense_lu_solve(&a.to_dense(), b) {
            let res = residual_inf(a, &x, b);
            return (
                x,
                SolveReport {
                    iterations: rep.iterations,
                    residual: res,
                    converged: true,
                },
            );
        }
    }
    (x, rep)
}

/// Power iteration for the stationary row vector `π P = π` of a stochastic
/// matrix `P` (rows sum to 1). Returns the normalized distribution.
///
/// # Panics
/// Panics if `p` is not square.
pub fn power_iteration_stationary(p: &Csr, cfg: &IterConfig) -> (Vec<f64>, SolveReport) {
    let n = p.rows();
    assert_eq!(p.cols(), n, "power iteration needs a square matrix");
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for it in 0..cfg.max_iterations {
        p.vecmat_into(&pi, &mut next);
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in next.iter_mut() {
                *v /= total;
            }
        }
        let diff = pi
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        std::mem::swap(&mut pi, &mut next);
        if diff <= cfg.tolerance {
            return (
                pi,
                SolveReport {
                    iterations: it + 1,
                    residual: diff,
                    converged: true,
                },
            );
        }
    }
    (
        pi.clone(),
        SolveReport {
            iterations: cfg.max_iterations,
            residual: f64::NAN,
            converged: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn diag_dominant_example() -> (Csr, Vec<f64>, Vec<f64>) {
        // A = [[4,-1,0],[-1,4,-1],[0,-1,4]], x = [1,2,3]
        let mut t = Triplets::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 4.0);
        }
        t.push(0, 1, -1.0);
        t.push(1, 0, -1.0);
        t.push(1, 2, -1.0);
        t.push(2, 1, -1.0);
        let a = t.build();
        let x = vec![1.0, 2.0, 3.0];
        let b = a.matvec(&x);
        (a, b, x)
    }

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(b) {
            assert!((u - v).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn jacobi_converges() {
        let (a, b, x) = diag_dominant_example();
        let (sol, rep) = jacobi(&a, &b, &IterConfig::default());
        assert!(rep.converged, "{rep:?}");
        assert_vec_close(&sol, &x, 1e-9);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b, _) = diag_dominant_example();
        let (_, rj) = jacobi(&a, &b, &IterConfig::default());
        let (_, rg) = gauss_seidel(&a, &b, &IterConfig::default());
        assert!(rg.converged && rj.converged);
        assert!(
            rg.iterations <= rj.iterations,
            "gs {} vs j {}",
            rg.iterations,
            rj.iterations
        );
    }

    #[test]
    fn sor_converges() {
        let (a, b, x) = diag_dominant_example();
        let cfg = IterConfig {
            omega: 1.3,
            ..Default::default()
        };
        let (sol, rep) = sor(&a, &b, &cfg);
        assert!(rep.converged);
        assert_vec_close(&sol, &x, 1e-9);
    }

    #[test]
    #[should_panic]
    fn sor_rejects_bad_omega() {
        let (a, b, _) = diag_dominant_example();
        let cfg = IterConfig {
            omega: 2.5,
            ..Default::default()
        };
        sor(&a, &b, &cfg);
    }

    #[test]
    fn dense_lu_exact() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = dense_lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert_vec_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn dense_lu_needs_pivoting() {
        // zero leading pivot forces a row swap
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = dense_lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_vec_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn dense_lu_detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(dense_lu_solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn dense_lu_empty_system() {
        assert_eq!(dense_lu_solve(&[], &[]), Some(vec![]));
    }

    #[test]
    fn iterative_matches_lu_on_random_dominant_system() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n = 40;
        let mut t = Triplets::new(n, n);
        let mut dense = vec![vec![0.0; n]; n];
        for r in 0..n {
            let mut offdiag = 0.0;
            for c in 0..n {
                if r != c && rng.gen::<f64>() < 0.2 {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(r, c, v);
                    dense[r][c] = v;
                    offdiag += v.abs();
                }
            }
            let d = offdiag + 1.0;
            t.push(r, r, d);
            dense[r][r] = d;
        }
        let a = t.build();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let (xi, rep) = gauss_seidel(&a, &b, &IterConfig::default());
        assert!(rep.converged);
        let xd = dense_lu_solve(&dense, &b).unwrap();
        assert_vec_close(&xi, &xd, 1e-8);
    }

    #[test]
    fn solve_auto_falls_back_to_lu() {
        // Non-diagonally-dominant but well-conditioned: GS may stall, LU must win.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 3.0);
        t.push(1, 0, 3.0);
        t.push(1, 1, 1.0);
        let a = t.build();
        let cfg = IterConfig {
            max_iterations: 50,
            ..Default::default()
        };
        let (x, rep) = solve_auto(&a, &[7.0, 5.0], &cfg);
        assert!(rep.converged);
        assert_vec_close(&x, &[1.0, 2.0], 1e-9);
    }

    #[test]
    fn power_iteration_two_state_chain() {
        // P = [[0.9, 0.1],[0.5,0.5]] => pi = (5/6, 1/6)
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 0.9);
        t.push(0, 1, 0.1);
        t.push(1, 0, 0.5);
        t.push(1, 1, 0.5);
        let p = t.build();
        let (pi, rep) = power_iteration_stationary(&p, &IterConfig::default());
        assert!(rep.converged);
        assert_vec_close(&pi, &[5.0 / 6.0, 1.0 / 6.0], 1e-9);
    }
}
