//! Numerical substrate for the GCS-IDS reproduction.
//!
//! This crate provides the mathematical foundation shared by the stochastic
//! Petri net engine, the MANET simulator, and the analytic voting-IDS
//! formulas:
//!
//! * [`special`] — log-gamma, log-factorials, log-binomials, the error
//!   function and the standard normal quantile.
//! * [`dist`] — numerically stable binomial, hypergeometric and Poisson
//!   distributions (pmf/cdf/sf in linear and log space) plus small-n
//!   samplers.
//! * [`foxglynn`] — Fox–Glynn-style Poisson weight computation used by the
//!   uniformization transient solver.
//! * [`stats`] — Welford accumulators, confidence intervals, Kahan summation
//!   and quantiles.
//! * [`sparse`] — compressed sparse row matrices.
//! * [`linsolve`] — stationary iterative solvers (Jacobi, Gauss–Seidel, SOR),
//!   a dense-LU fallback and power iteration.
//! * [`search`] — grid and golden-section extremum search.
//! * [`unionfind`] — disjoint-set forest.
//! * [`rng`] — SplitMix64 seed derivation for deterministic parallel streams.
//! * [`replicate`] — the shared Monte-Carlo replication engine: a
//!   [`Replicate`] task, streaming mergeable [`OutcomeSink`]s, and a
//!   batch-parallel executor driving fixed or adaptive [`SamplingPlan`]s
//!   with results bit-identical across batch sizes and thread partitions.
//!
//! Everything here is deterministic and dependency-light so the higher
//! layers can be exhaustively property-tested.

// Indexed loops mirror the textbook formulations of the numeric kernels,
// and the Lanczos/rational-approximation constants are quoted at full
// published precision.
#![allow(clippy::needless_range_loop, clippy::excessive_precision)]

pub mod dist;
pub mod foxglynn;
pub mod linsolve;
pub mod replicate;
pub mod rng;
pub mod search;
pub mod sparse;
pub mod special;
pub mod stats;
pub mod unionfind;

pub use dist::{Binomial, Hypergeometric, Poisson};
pub use replicate::{run_plan, Completed, OutcomeSink, Replicate, SamplingPlan};
pub use sparse::Csr;
pub use stats::{ConfidenceInterval, KahanSum, SurvivalAccumulator, Welford};
pub use unionfind::UnionFind;
