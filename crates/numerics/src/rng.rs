//! Deterministic seed derivation for parallel Monte-Carlo streams.
//!
//! Every replication gets an independent, reproducible seed derived from a
//! master seed with SplitMix64 — the recommended seeding discipline for
//! parallel simulation so results are independent of worker scheduling.

/// SplitMix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derive the seed of the `index`-th child stream of `master`.
///
/// Children are decorrelated even for adjacent indices: the index is first
/// diffused through its own SplitMix64 round.
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut mix = SplitMix64::new(master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index + 1));
    // Two rounds of mixing.
    let a = mix.next_u64();
    let mut mix2 = SplitMix64::new(a ^ index.rotate_left(17));
    mix2.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 (from the public-domain C impl).
        let mut s = SplitMix64::new(1234567);
        let first = s.next_u64();
        let second = s.next_u64();
        assert_ne!(first, second);
        // determinism
        let mut s2 = SplitMix64::new(1234567);
        assert_eq!(s2.next_u64(), first);
        assert_eq!(s2.next_u64(), second);
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut s = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_f64_mean_near_half() {
        let mut s = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn child_seeds_distinct_for_adjacent_indices() {
        let master = 0xDEADBEEF;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(
                seen.insert(child_seed(master, i)),
                "duplicate child seed at {i}"
            );
        }
    }

    #[test]
    fn child_seeds_depend_on_master() {
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
        assert_ne!(child_seed(1, 5), child_seed(2, 5));
    }

    #[test]
    fn child_seeds_deterministic() {
        assert_eq!(child_seed(99, 3), child_seed(99, 3));
    }
}
