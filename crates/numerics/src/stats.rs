//! Streaming statistics: Kahan summation, Welford moments, confidence
//! intervals, histograms and quantiles.
//!
//! Monte-Carlo validation of the analytic model runs thousands of
//! replications in parallel; these accumulators are mergeable so each worker
//! can keep a private one (see the `merge` methods).

use crate::special::norm_quantile;

/// Compensated (Kahan–Babuška) summation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Fresh zero sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Merge another compensated sum into this one.
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.add(other.comp);
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = KahanSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator (Chan et al. parallel update).
    pub fn merge(&mut self, o: &Welford) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        let n1 = self.n as f64;
        let n2 = o.n as f64;
        let d = o.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += o.m2 + d * d * n1 * n2 / n;
        self.n += o.n;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Relative CI half-width at `level` once at least two observations
    /// exist (`None` before that) — the replication engine's stopping
    /// metric, shared by every [`crate::replicate::OutcomeSink`] whose
    /// primary statistic is a Welford mean.
    ///
    /// # Panics
    /// Panics if `level` is outside (0, 1).
    pub fn relative_precision(&self, level: f64) -> Option<f64> {
        (self.n >= 2).then(|| self.confidence_interval(level).relative_half_width())
    }

    /// Two-sided normal-approximation confidence interval at `level`
    /// (e.g. 0.95).
    ///
    /// # Panics
    /// Panics if `level` is outside (0, 1).
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(level > 0.0 && level < 1.0, "bad confidence level {level}");
        let z = norm_quantile(0.5 + level / 2.0);
        let half = z * self.std_err();
        ConfidenceInterval {
            mean: self.mean,
            half_width: half,
            level,
            n: self.n,
        }
    }
}

/// Two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half width of the interval.
    pub half_width: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
    /// Sample count behind the estimate.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True when `x` lies within the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half width (`half_width / |mean|`, ∞ for zero mean).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Survival counts at horizon `t` for right-censored event times.
///
/// `events` holds `(time, censored)` pairs: a failure observed at `time`,
/// or a run censored (still alive, no longer observed) at `time`. Runs
/// censored *before* `t` carry no information about surviving to `t` and
/// are excluded; everything else is at risk, and survives when its event
/// time is `≥ t`. Returns `(surviving, at_risk)` — the simplified
/// Kaplan–Meier numerator/denominator for a common censoring horizon.
pub fn at_risk_surviving(events: &[(f64, bool)], t: f64) -> (u64, u64) {
    let mut at_risk = 0u64;
    let mut surviving = 0u64;
    for &(time, censored) in events {
        if censored && time < t {
            continue;
        }
        at_risk += 1;
        if time >= t {
            surviving += 1;
        }
    }
    (surviving, at_risk)
}

/// Wilson score interval for a binomial proportion `successes / n`.
///
/// The returned [`ConfidenceInterval`] is centred on the **Wilson
/// midpoint** `(k + z²/2) / (n + z²)` (the interval is symmetric around
/// it), not on the raw proportion `k/n` — read the point estimate
/// separately.
///
/// Wilson is chosen over the naive Wald interval because the degenerate
/// samples that survival analysis hits constantly stay well-behaved, with
/// no `NaN` anywhere:
/// * `n = 0` (nothing at risk — every replication censored earlier)
///   returns `None` instead of propagating a `0/0` mean;
/// * zero-variance samples (`successes ∈ {0, n}`, e.g. survival at `t = 0`
///   where every replication is alive) get the exact one-sided bounds
///   `[n/(n+z²), 1]` / `[0, z²/(n+z²)]` — a Wald interval collapses to
///   zero width there, which both understates the uncertainty and makes
///   any exact-inside-CI containment check fail spuriously.
///
/// Bounds are analytically inside `[0, 1]`.
///
/// # Panics
/// Panics if `successes > n` or `level` is outside (0, 1).
pub fn proportion_ci(successes: u64, n: u64, level: f64) -> Option<ConfidenceInterval> {
    assert!(successes <= n, "{successes} successes out of {n} trials");
    assert!(level > 0.0 && level < 1.0, "bad confidence level {level}");
    if n == 0 {
        return None;
    }
    let k = successes as f64;
    let nf = n as f64;
    let z = norm_quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let center = (k + z2 / 2.0) / (nf + z2);
    // The radicand k(n−k)/n + z²/4 is ≥ z²/4 > 0: never NaN.
    let half = z * (k * (nf - k) / nf + z2 / 4.0).sqrt() / (nf + z2);
    Some(ConfidenceInterval {
        mean: center,
        half_width: half,
        level,
        n,
    })
}

/// Streaming Kaplan–Meier-style survival counts on a fixed horizon grid.
///
/// The batch helper [`at_risk_surviving`] needs the full event list; this
/// accumulator maintains the same numerator/denominator per grid point
/// incrementally from `(time, censored)` events, so replication engines
/// can aggregate survival without materializing outcomes. Merging two
/// accumulators over the same grid is exact (integer counters), which
/// makes it safe for parallel per-worker sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalAccumulator {
    times: Vec<f64>,
    surviving: Vec<u64>,
    at_risk: Vec<u64>,
    censored_before: Vec<u64>,
}

impl SurvivalAccumulator {
    /// Accumulator over the given horizon grid.
    pub fn new(times: &[f64]) -> Self {
        Self {
            times: times.to_vec(),
            surviving: vec![0; times.len()],
            at_risk: vec![0; times.len()],
            censored_before: vec![0; times.len()],
        }
    }

    /// The horizon grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Record one replication ending at `time` (censored = still alive but
    /// no longer observed).
    pub fn push(&mut self, time: f64, censored: bool) {
        for (i, &t) in self.times.iter().enumerate() {
            if censored && time < t {
                // Censored before the horizon: carries no information about
                // surviving to t, but its existence makes the common-horizon
                // estimator failure-biased there — flag it.
                self.censored_before[i] += 1;
                continue;
            }
            self.at_risk[i] += 1;
            if time >= t {
                self.surviving[i] += 1;
            }
        }
    }

    /// Merge counts accumulated over the same grid (exact).
    ///
    /// # Panics
    /// Panics when the grids differ.
    pub fn merge(&mut self, other: &SurvivalAccumulator) {
        assert_eq!(self.times, other.times, "survival grids must match");
        for i in 0..self.times.len() {
            self.surviving[i] += other.surviving[i];
            self.at_risk[i] += other.at_risk[i];
            self.censored_before[i] += other.censored_before[i];
        }
    }

    /// `(surviving, at_risk)` at grid point `i`, matching
    /// [`at_risk_surviving`] over the same events.
    pub fn counts(&self, i: usize) -> (u64, u64) {
        (self.surviving[i], self.at_risk[i])
    }

    /// True when the estimate at grid point `i` is unbiased under the
    /// common-censoring-horizon assumption: no replication was censored
    /// strictly before the horizon.
    pub fn estimable(&self, i: usize) -> bool {
        self.censored_before[i] == 0
    }
}

/// Empirical quantile with linear interpolation (type-7, the numpy default).
/// The input slice is sorted in place.
///
/// # Panics
/// Panics on an empty slice or `q` outside [0, 1].
pub fn quantile_mut(xs: &mut [f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (xs.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width buckets on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range empty: [{lo}, {hi})");
        Self {
            lo,
            hi,
            buckets: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record a value.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let last = self.buckets.len() - 1;
            self.buckets[idx.min(last)] += 1;
        }
    }

    /// Counts per bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of values below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at/above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_adversarial_series() {
        let mut k = KahanSum::new();
        let mut naive = 0.0_f64;
        k.add(1.0);
        naive += 1.0;
        for _ in 0..10_000_000 {
            k.add(1e-16);
            naive += 1e-16;
        }
        let exact = 1.0 + 1e-16 * 1e7;
        assert!((k.value() - exact).abs() < 1e-12);
        // naive summation loses all the tiny terms
        assert!((naive - exact).abs() > 1e-10);
    }

    #[test]
    fn kahan_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let mut a = KahanSum::new();
        for &x in &xs[..500] {
            a.add(x);
        }
        let mut b = KahanSum::new();
        for &x in &xs[500..] {
            b.add(x);
        }
        let whole: KahanSum = xs.iter().copied().collect();
        a.merge(&b);
        assert!((a.value() - whole.value()).abs() < 1e-12);
    }

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // sample variance with n-1 = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..2001).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-8);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(3.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn confidence_interval_sanity() {
        let mut w = Welford::new();
        for i in 0..100 {
            w.push(i as f64);
        }
        let ci = w.confidence_interval(0.95);
        assert!(ci.contains(w.mean()));
        assert!(ci.lo() < ci.hi());
        // 95% z ≈ 1.96
        assert!((ci.half_width / w.std_err() - 1.959_963_984_540_054).abs() < 1e-6);
        // wider level => wider interval
        let ci99 = w.confidence_interval(0.99);
        assert!(ci99.half_width > ci.half_width);
    }

    #[test]
    fn at_risk_surviving_excludes_early_censoring() {
        // failure at 5, censored at 10
        let events = [(5.0, false), (10.0, true)];
        assert_eq!(at_risk_surviving(&events, 2.0), (2, 2));
        assert_eq!(at_risk_surviving(&events, 7.0), (1, 2));
        // the run censored at 10 carries no information about t = 20
        assert_eq!(at_risk_surviving(&events, 20.0), (0, 1));
        // and if everything was censored before t, nothing is at risk
        assert_eq!(at_risk_surviving(&[(1.0, true)], 2.0), (0, 0));
    }

    #[test]
    fn proportion_ci_zero_variance_is_finite() {
        // t = 0 survival: every replication alive — a naive Wald interval
        // produces a zero-width (or, with fp rounding into sqrt of a
        // negative, NaN) interval here; Wilson gives the exact one-sided
        // bounds with no NaN anywhere.
        let z = 1.959_963_984_540_054_f64;
        let ci = proportion_ci(200, 200, 0.95).unwrap();
        assert!(!ci.mean.is_nan() && !ci.half_width.is_nan());
        assert!((ci.hi() - 1.0).abs() < 1e-12, "hi = {}", ci.hi());
        assert!((ci.lo() - 200.0 / (200.0 + z * z)).abs() < 1e-9);
        assert!(ci.contains(1.0));

        let none_survive = proportion_ci(0, 50, 0.95).unwrap();
        assert!(none_survive.lo().abs() < 1e-12);
        assert!((none_survive.hi() - z * z / (50.0 + z * z)).abs() < 1e-9);
        assert!(none_survive.contains(0.0));
    }

    #[test]
    fn proportion_ci_none_when_nothing_at_risk() {
        assert!(proportion_ci(0, 0, 0.95).is_none());
    }

    #[test]
    fn proportion_ci_matches_wilson_formula() {
        let z = 1.959_963_984_540_054_f64;
        let ci = proportion_ci(30, 100, 0.95).unwrap();
        let center = (30.0 + z * z / 2.0) / (100.0 + z * z);
        let half = z * (30.0_f64 * 70.0 / 100.0 + z * z / 4.0).sqrt() / (100.0 + z * z);
        assert!((ci.mean - center).abs() < 1e-12);
        assert!((ci.half_width - half).abs() < 1e-12);
        assert_eq!(ci.n, 100);
        // interval brackets the raw proportion and stays inside [0, 1]
        assert!(ci.lo() < 0.3 && 0.3 < ci.hi());
        assert!(ci.lo() >= 0.0 && ci.hi() <= 1.0);
    }

    #[test]
    fn survival_accumulator_matches_batch_helper() {
        let events = [(5.0, false), (10.0, true), (2.0, true), (8.0, false)];
        let grid = [0.0, 3.0, 7.0, 9.0, 20.0];
        let mut acc = SurvivalAccumulator::new(&grid);
        for &(t, c) in &events {
            acc.push(t, c);
        }
        for (i, &t) in grid.iter().enumerate() {
            assert_eq!(acc.counts(i), at_risk_surviving(&events, t), "t = {t}");
            let censored_earlier = events.iter().any(|&(time, c)| c && time < t);
            assert_eq!(acc.estimable(i), !censored_earlier, "t = {t}");
        }
    }

    #[test]
    fn survival_accumulator_merge_is_exact() {
        let events: Vec<(f64, bool)> = (0..40).map(|i| (i as f64 * 0.7, i % 5 == 0)).collect();
        let grid = [0.0, 5.0, 15.0, 30.0];
        let mut whole = SurvivalAccumulator::new(&grid);
        let mut a = SurvivalAccumulator::new(&grid);
        let mut b = SurvivalAccumulator::new(&grid);
        for (i, &(t, c)) in events.iter().enumerate() {
            whole.push(t, c);
            if i % 2 == 0 {
                a.push(t, c);
            } else {
                b.push(t, c);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic]
    fn survival_accumulator_rejects_grid_mismatch() {
        let mut a = SurvivalAccumulator::new(&[1.0]);
        a.merge(&SurvivalAccumulator::new(&[2.0]));
    }

    #[test]
    fn quantile_interpolation() {
        let mut xs = vec![3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile_mut(&mut xs, 0.0), 1.0);
        assert_eq!(quantile_mut(&mut xs, 1.0), 4.0);
        assert!((quantile_mut(&mut xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile_mut(&mut [], 0.5);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
    }
}
