//! Discrete distributions with numerically stable pmf/cdf/sf evaluation and
//! small-population samplers.
//!
//! The voting-IDS formulas need *exact* tail probabilities of binomials with
//! tiny `p` (host-IDS error rates of 1%) convolved over hypergeometric voter
//! draws; everything here therefore works in log space and only exponentiates
//! at the end.

use crate::special::{ln_binomial, log_add_exp};
use rand::Rng;

/// Binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `Bin(n, p)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Binomial: p={p} outside [0,1]");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `ln P[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Degenerate p handled exactly.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln_1p_matched()
    }

    /// `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P[X ≤ k]` by direct summation from the lighter tail.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        // Sum the smaller number of terms.
        if (k as f64) <= self.n as f64 * self.p {
            // lower tail is small: sum it directly in log space
            let mut acc = f64::NEG_INFINITY;
            for j in 0..=k {
                acc = log_add_exp(acc, self.ln_pmf(j));
            }
            acc.exp().min(1.0)
        } else {
            1.0 - self.sf(k)
        }
    }

    /// `P[X > k]` (survival function).
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if (k as f64) < self.n as f64 * self.p {
            return (1.0 - self.cdf_lower_direct(k)).clamp(0.0, 1.0);
        }
        let mut acc = f64::NEG_INFINITY;
        for j in (k + 1)..=self.n {
            acc = log_add_exp(acc, self.ln_pmf(j));
        }
        acc.exp().min(1.0)
    }

    fn cdf_lower_direct(&self, k: u64) -> f64 {
        let mut acc = f64::NEG_INFINITY;
        for j in 0..=k.min(self.n) {
            acc = log_add_exp(acc, self.ln_pmf(j));
        }
        acc.exp().min(1.0)
    }

    /// `P[X ≥ k]`.
    pub fn sf_inclusive(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            self.sf(k - 1)
        }
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draw a sample by `n` Bernoulli trials — exact and adequate for the
    /// small `n` (vote counts ≤ a few dozen) used in the simulators.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut c = 0;
        for _ in 0..self.n {
            if rng.gen::<f64>() < self.p {
                c += 1;
            }
        }
        c
    }
}

/// Extension trait so `(1-p).ln_1p_matched()` reads as intended: compute
/// `ln(1-p)` accurately as `ln_1p(-p)` when we still hold `1-p`.
trait Ln1pMatched {
    fn ln_1p_matched(self) -> f64;
}
impl Ln1pMatched for f64 {
    fn ln_1p_matched(self) -> f64 {
        // `self` is (1 - p); recover p and use ln_1p for accuracy near 1.
        let p = 1.0 - self;
        (-p).ln_1p()
    }
}

/// Hypergeometric distribution: draws of size `m` from a population of
/// `total` items of which `tagged` are special; `X` counts special items in
/// the draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    total: u64,
    tagged: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Create the distribution.
    ///
    /// # Panics
    /// Panics unless `tagged ≤ total` and `draws ≤ total`.
    pub fn new(total: u64, tagged: u64, draws: u64) -> Self {
        assert!(
            tagged <= total,
            "Hypergeometric: tagged {tagged} > total {total}"
        );
        assert!(
            draws <= total,
            "Hypergeometric: draws {draws} > total {total}"
        );
        Self {
            total,
            tagged,
            draws,
        }
    }

    /// Smallest support value `max(0, draws + tagged − total)`.
    pub fn support_min(&self) -> u64 {
        (self.draws + self.tagged).saturating_sub(self.total)
    }

    /// Largest support value `min(draws, tagged)`.
    pub fn support_max(&self) -> u64 {
        self.draws.min(self.tagged)
    }

    /// `ln P[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.support_min() || k > self.support_max() {
            return f64::NEG_INFINITY;
        }
        ln_binomial(self.tagged, k) + ln_binomial(self.total - self.tagged, self.draws - k)
            - ln_binomial(self.total, self.draws)
    }

    /// `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Mean `draws · tagged / total`.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.draws as f64 * self.tagged as f64 / self.total as f64
        }
    }

    /// Exact sequential sampler (urn draw without replacement).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining_tagged = self.tagged;
        let mut remaining_total = self.total;
        let mut hit = 0;
        for _ in 0..self.draws {
            if remaining_total == 0 {
                break;
            }
            if (rng.gen_range(0..remaining_total)) < remaining_tagged {
                hit += 1;
                remaining_tagged -= 1;
            }
            remaining_total -= 1;
        }
        hit
    }
}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create `Poisson(lambda)`.
    ///
    /// # Panics
    /// Panics if `lambda < 0` or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson: bad lambda {lambda}"
        );
        Self { lambda }
    }

    /// `ln P[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.lambda.ln() - self.lambda - crate::special::ln_factorial(k)
    }

    /// `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Knuth sampler for small `lambda`, normal approximation with rejection
    /// fallback (inversion from the mode) for large.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        }
        // Split: Poisson(a+b) = Poisson(a) + Poisson(b). Recurse on halves —
        // cost O(lambda/30) sub-draws; fine for the rates we use.
        let half = Poisson::new(self.lambda / 2.0);
        half.sample(rng) + half.sample(rng)
    }
}

/// Sample an exponential random variable with the given `rate`.
///
/// # Panics
/// Panics if `rate <= 0`.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0,
        "sample_exponential: rate {rate} must be positive"
    );
    // Use 1-u to avoid ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(0u64, 0.3), (1, 0.5), (10, 0.01), (25, 0.7), (40, 0.999)] {
            let b = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            close(total, 1.0, 1e-12);
        }
    }

    #[test]
    fn binomial_degenerate_p() {
        let b0 = Binomial::new(7, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(7, 1.0);
        assert_eq!(b1.pmf(7), 1.0);
        assert_eq!(b1.pmf(6), 0.0);
        assert_eq!(b1.sf_inclusive(7), 1.0);
    }

    #[test]
    fn binomial_cdf_sf_complement() {
        let b = Binomial::new(20, 0.13);
        for k in 0..=20 {
            close(b.cdf(k) + b.sf(k), 1.0, 1e-12);
        }
    }

    #[test]
    fn binomial_sf_inclusive_majority_example() {
        // P[Bin(5, 0.01) >= 3]: exact = C(5,3)p^3 q^2 + C(5,4) p^4 q + p^5
        let b = Binomial::new(5, 0.01);
        let p: f64 = 0.01;
        let q = 1.0 - p;
        let exact = 10.0 * p.powi(3) * q.powi(2) + 5.0 * p.powi(4) * q + p.powi(5);
        close(b.sf_inclusive(3), exact, 1e-15);
    }

    #[test]
    fn binomial_tiny_tail_no_underflow_to_garbage() {
        let b = Binomial::new(50, 1e-8);
        let sf = b.sf_inclusive(25);
        assert!(sf > 0.0 && sf < 1e-150);
    }

    #[test]
    fn binomial_moments_match_samples() {
        let b = Binomial::new(30, 0.4);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        close(mean, b.mean(), 0.1);
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        for &(total, tagged, draws) in &[(10u64, 3u64, 5u64), (50, 20, 7), (9, 9, 4), (6, 0, 3)] {
            let h = Hypergeometric::new(total, tagged, draws);
            let total_p: f64 = (h.support_min()..=h.support_max()).map(|k| h.pmf(k)).sum();
            close(total_p, 1.0, 1e-12);
        }
    }

    #[test]
    fn hypergeometric_support_edges() {
        let h = Hypergeometric::new(10, 8, 6);
        // must draw at least 8+6-10 = 4 tagged
        assert_eq!(h.support_min(), 4);
        assert_eq!(h.support_max(), 6);
        assert_eq!(h.pmf(3), 0.0);
        assert_eq!(h.pmf(7), 0.0);
    }

    #[test]
    fn hypergeometric_known_value() {
        // P[X=2] drawing 4 from 5 tagged of 12: C(5,2)C(7,2)/C(12,4) = 10*21/495
        let h = Hypergeometric::new(12, 5, 4);
        close(h.pmf(2), 10.0 * 21.0 / 495.0, 1e-12);
    }

    #[test]
    fn hypergeometric_sampler_mean() {
        let h = Hypergeometric::new(40, 12, 9);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| h.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        close(mean, h.mean(), 0.05);
    }

    #[test]
    fn poisson_pmf_sums() {
        let p = Poisson::new(3.7);
        let total: f64 = (0..80).map(|k| p.pmf(k)).sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn poisson_zero_lambda() {
        let p = Poisson::new(0.0);
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(1), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    fn poisson_sampler_large_lambda_mean() {
        let p = Poisson::new(120.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        close(mean, 120.0, 1.0);
    }

    #[test]
    fn exponential_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, 4.0))
            .sum::<f64>()
            / n as f64;
        close(mean, 0.25, 0.01);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        sample_exponential(&mut rng, 0.0);
    }
}
