//! Extremum search used to locate optimal detection intervals.
//!
//! The paper sweeps `TIDS` over a log-spaced grid and reports the maximizing
//! (MTTSF) or minimizing (Ĉtotal) point. We provide the grid argmax plus a
//! golden-section refinement for unimodal objectives, and a log-spaced grid
//! builder matching the paper's axis.

/// Result of an extremum search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// Argument achieving the extremum.
    pub x: f64,
    /// Objective value there.
    pub value: f64,
}

/// Argmax of `f` over the given grid points.
///
/// # Panics
/// Panics on an empty grid or if `f` returns NaN.
pub fn grid_argmax(grid: &[f64], mut f: impl FnMut(f64) -> f64) -> Extremum {
    assert!(!grid.is_empty(), "grid_argmax: empty grid");
    let mut best = Extremum {
        x: grid[0],
        value: f(grid[0]),
    };
    assert!(
        !best.value.is_nan(),
        "objective returned NaN at {}",
        grid[0]
    );
    for &x in &grid[1..] {
        let v = f(x);
        assert!(!v.is_nan(), "objective returned NaN at {x}");
        if v > best.value {
            best = Extremum { x, value: v };
        }
    }
    best
}

/// Argmin of `f` over the grid (argmax of `−f`).
pub fn grid_argmin(grid: &[f64], mut f: impl FnMut(f64) -> f64) -> Extremum {
    let e = grid_argmax(grid, |x| -f(x));
    Extremum {
        x: e.x,
        value: -e.value,
    }
}

/// Golden-section search maximizing a unimodal `f` on `[lo, hi]`.
///
/// # Panics
/// Panics if `lo >= hi` or tolerance is non-positive.
pub fn golden_section_max(lo: f64, hi: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> Extremum {
    assert!(lo < hi, "golden_section_max: empty interval [{lo}, {hi}]");
    assert!(tol > 0.0, "golden_section_max: bad tolerance {tol}");
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    Extremum { x, value: f(x) }
}

/// Golden-section search minimizing a unimodal `f` on `[lo, hi]`.
pub fn golden_section_min(lo: f64, hi: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> Extremum {
    let e = golden_section_max(lo, hi, tol, |x| -f(x));
    Extremum {
        x: e.x,
        value: -e.value,
    }
}

/// `n` log-spaced points from `lo` to `hi` inclusive.
///
/// # Panics
/// Panics unless `0 < lo < hi` and `n >= 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi > lo,
        "log_space: need 0 < lo < hi, got [{lo}, {hi}]"
    );
    assert!(n >= 2, "log_space: need at least two points");
    let (l0, l1) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// `n` linearly spaced points from `lo` to `hi` inclusive.
///
/// # Panics
/// Panics unless `lo < hi` and `n >= 2`.
pub fn lin_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(hi > lo, "lin_space: need lo < hi");
    assert!(n >= 2, "lin_space: need at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_argmax_picks_peak() {
        let grid = [1.0, 2.0, 3.0, 4.0];
        let e = grid_argmax(&grid, |x| -(x - 3.0) * (x - 3.0));
        assert_eq!(e.x, 3.0);
        assert_eq!(e.value, 0.0);
    }

    #[test]
    fn grid_argmin_picks_valley() {
        let grid = [0.5, 1.0, 2.0, 8.0];
        let e = grid_argmin(&grid, |x| (x - 2.1).abs());
        assert_eq!(e.x, 2.0);
    }

    #[test]
    fn grid_first_max_wins_ties_to_leftmost() {
        let grid = [1.0, 2.0, 3.0];
        let e = grid_argmax(&grid, |_| 7.0);
        assert_eq!(e.x, 1.0);
    }

    #[test]
    #[should_panic]
    fn grid_empty_panics() {
        grid_argmax(&[], |x| x);
    }

    #[test]
    fn golden_max_quadratic() {
        let e = golden_section_max(0.0, 10.0, 1e-8, |x| -(x - 4.3) * (x - 4.3) + 2.0);
        assert!((e.x - 4.3).abs() < 1e-6);
        assert!((e.value - 2.0).abs() < 1e-10);
    }

    #[test]
    fn golden_min_quadratic() {
        let e = golden_section_min(-5.0, 5.0, 1e-8, |x| (x + 1.5) * (x + 1.5));
        assert!((e.x + 1.5).abs() < 1e-6);
    }

    #[test]
    fn golden_handles_boundary_maximum() {
        let e = golden_section_max(0.0, 1.0, 1e-9, |x| x);
        assert!((e.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_space_matches_paper_style_axis() {
        let g = log_space(5.0, 1200.0, 4);
        assert!((g[0] - 5.0).abs() < 1e-12);
        assert!((g[3] - 1200.0).abs() < 1e-9);
        // ratios constant
        let r1 = g[1] / g[0];
        let r2 = g[2] / g[1];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn lin_space_endpoints() {
        let g = lin_space(1.0, 3.0, 5);
        assert_eq!(g, vec![1.0, 1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    #[should_panic]
    fn log_space_rejects_nonpositive() {
        log_space(0.0, 1.0, 3);
    }
}
