//! Compressed sparse row (CSR) matrices.
//!
//! The CTMC generators produced by the SPN reachability graph are extremely
//! sparse (≤ 7 transitions per state in the paper's model), so all solvers
//! run on this representation. Construction goes through a triplet buffer
//! ([`Triplets`]) that sorts and merges duplicates once.
//!
//! The sparsity *structure* ([`CsrPattern`]: row pointers + column indices)
//! is split from the value array and shared behind an [`Arc`]: re-weighted
//! solves that keep the pattern fixed (the explore-once-solve-many sweeps)
//! build the structure once and thereafter only rewrite [`Csr::values_mut`]
//! in place — cloning a [`Csr`] never copies the pattern.

use rayon::prelude::*;
use std::sync::Arc;

/// Rows per parallel work unit of [`Csr::par_gather_into`] — the same fixed
/// 64-wide grid `replicate` uses, so the split never depends on worker
/// count.
const GATHER_CHUNK: usize = 64;

/// Fixed-order gather dot product of one CSR row against a dense vector:
/// `Σⱼ vals[j] · x[cols[j]]`, accumulated strictly in ascending stored
/// order. Every gather kernel in this module (CSR, [`EllMatrix`], and
/// their parallel variants) uses this same in-order accumulation, so all
/// of them produce bit-identical results for the same row content — the
/// evaluation order is a pure function of the row structure, never of
/// scheduling or storage format.
#[inline]
fn gather_row(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len());
    let mut acc = 0.0_f64;
    for (&c, &v) in cols.iter().zip(vals) {
        acc += v * x[c as usize];
    }
    acc
}

/// The immutable sparsity structure of a [`Csr`]: everything except the
/// values. Shared (via [`Arc`]) between all value arrays laid out on the
/// same pattern.
#[derive(Debug, PartialEq, Eq)]
pub struct CsrPattern {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
}

impl CsrPattern {
    /// Build a pattern from raw CSR structure.
    ///
    /// # Panics
    /// Panics if `row_ptr` is not a valid monotone pointer array of length
    /// `rows + 1` ending at `col_idx.len()`, or any column is out of range.
    pub fn new(rows: usize, cols: usize, row_ptr: Vec<u32>, col_idx: Vec<u32>) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(
            row_ptr[rows] as usize,
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        assert!(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Half-open range of value-array slots belonging to row `r`.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_range(r)]
    }

    /// Column index of a flat value-array slot.
    pub fn col(&self, entry: usize) -> usize {
        self.col_idx[entry] as usize
    }
}

/// Triplet (COO) accumulation buffer for building a [`Csr`].
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Triplets {
    /// New buffer for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Append `a[r, c] += v`.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "triplet ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        if v != 0.0 {
            self.entries.push((r as u32, c as u32, v));
        }
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sort, merge duplicates, and build the CSR matrix.
    pub fn build(mut self) -> Csr {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries {
            match merged.last_mut() {
                Some((pr, pc, pv)) if *pr == r && *pc == c => *pv += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0u32; self.rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let (col_idx, values) = merged.into_iter().map(|(_, c, v)| (c, v)).unzip();
        Csr {
            pattern: Arc::new(CsrPattern::new(self.rows, self.cols, row_ptr, col_idx)),
            values,
        }
    }
}

/// Compressed sparse row matrix with `f64` values: a shared [`CsrPattern`]
/// plus this matrix's own value array.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    pattern: Arc<CsrPattern>,
    values: Vec<f64>,
}

impl Csr {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            pattern: Arc::new(CsrPattern::new(rows, cols, vec![0; rows + 1], Vec::new())),
            values: Vec::new(),
        }
    }

    /// Matrix laid out on an existing (shared) pattern.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the pattern's entry count.
    pub fn from_pattern(pattern: Arc<CsrPattern>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), pattern.nnz(), "value array length mismatch");
        Self { pattern, values }
    }

    /// The sparsity structure (shareable across value arrays).
    pub fn pattern(&self) -> &Arc<CsrPattern> {
        &self.pattern
    }

    /// The stored values, in pattern (row-major, column-sorted) order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values — the in-place update hook for re-weighted
    /// solves that keep the pattern fixed.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        t.build()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.pattern.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.pattern.cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.pattern.row_range(r);
        self.pattern.col_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Entry lookup (O(row nnz)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(cc, _)| cc == c).map_or(0.0, |(_, v)| v)
    }

    /// `y = A x` (allocates).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows()];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-provided buffer.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows(), "matvec output dimension mismatch");
        for r in 0..self.rows() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
    }

    /// `y = xᵀ A` (row vector times matrix) into a caller buffer.
    pub fn vecmat_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows(), "vecmat dimension mismatch");
        assert_eq!(y.len(), self.cols(), "vecmat output dimension mismatch");
        y.fill(0.0);
        for r in 0..self.rows() {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                y[c] += xr * v;
            }
        }
    }

    /// `y = A x` by per-row gather dot products ([`gather_row`]). Each
    /// output element is an independent fixed-order dot, so the result is a
    /// pure function of the stored structure — see [`EllMatrix`] for the
    /// padded fixed-width variant the transient engine's hot loop uses.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn gather_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "gather dimension mismatch");
        assert_eq!(y.len(), self.rows(), "gather output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let range = self.pattern.row_range(r);
            *out = gather_row(&self.pattern.col_idx[range.clone()], &self.values[range], x);
        }
    }

    /// Parallel `y = A x`, bit-identical to [`Csr::gather_into`] for every
    /// worker count: output rows are split over a fixed 64-row chunk grid
    /// (never a function of thread count) and each row is an independent
    /// gather dot product evaluated in fixed order, so no floating-point
    /// reduction ever crosses a scheduling boundary.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn par_gather_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "gather dimension mismatch");
        assert_eq!(y.len(), self.rows(), "gather output dimension mismatch");
        let chunks: Vec<(usize, &mut [f64])> = y.chunks_mut(GATHER_CHUNK).enumerate().collect();
        let done: Vec<()> = chunks
            .into_par_iter()
            .map(|(ci, rows)| {
                let base = ci * GATHER_CHUNK;
                for (k, out) in rows.iter_mut().enumerate() {
                    let range = self.pattern.row_range(base + k);
                    *out = gather_row(&self.pattern.col_idx[range.clone()], &self.values[range], x);
                }
            })
            .collect();
        drop(done);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut t = Triplets::new(self.cols(), self.rows());
        for r in 0..self.rows() {
            for (c, v) in self.row(r) {
                t.push(c, r, v);
            }
        }
        t.build()
    }

    /// Row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows())
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Dense copy (rows × cols) — test/debug helper, avoid for large
    /// matrices.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.cols()]; self.rows()];
        for r in 0..self.rows() {
            for (c, v) in self.row(r) {
                d[r][c] = v;
            }
        }
        d
    }
}

/// Fixed-width (ELLPACK) gather matrix: every row is padded to the widest
/// row with `(col 0, value 0.0)` slots, so `y = A·x` is one branch-free
/// streaming loop with no per-row pointer bookkeeping. CTMC generators are
/// narrow (≤ ~7 entries per row in the paper's model), so padding waste is
/// small while the constant-width inner loop — monomorphized per width via
/// [`EllMatrix::gather_into`]'s dispatch — roughly halves the per-entry
/// cost of the CSR gather on the transient engine's hot path.
///
/// Accumulation per row is strictly in stored (ascending-column) order
/// followed by the zero pads, which add exactly `+0.0` terms: the result
/// is bit-identical to [`Csr::gather_into`] on the source matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    width: usize,
    /// `rows × width` column indices, row-major, padded with column 0.
    col_idx: Vec<u32>,
    /// `rows × width` values, row-major, padded with `0.0`.
    values: Vec<f64>,
}

/// Constant-width ELL gather block: `y[r] = Σⱼ vals[r·W+j] · x[cols[r·W+j]]`
/// in ascending `j` order. Monomorphizing over `W` lets the compiler fully
/// unroll the inner dot product.
fn ell_block<const W: usize>(cols: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]) {
    for (out, (cs, vs)) in y
        .iter_mut()
        .zip(cols.chunks_exact(W).zip(vals.chunks_exact(W)))
    {
        let mut acc = 0.0_f64;
        for j in 0..W {
            acc += vs[j] * x[cs[j] as usize];
        }
        *out = acc;
    }
}

/// Runtime-width fallback of [`ell_block`] for unusually wide matrices.
fn ell_block_dyn(w: usize, cols: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]) {
    for (out, (cs, vs)) in y
        .iter_mut()
        .zip(cols.chunks_exact(w).zip(vals.chunks_exact(w)))
    {
        let mut acc = 0.0_f64;
        for (&c, &v) in cs.iter().zip(vs) {
            acc += v * x[c as usize];
        }
        *out = acc;
    }
}

/// Width dispatch shared by the sequential and parallel ELL kernels, so
/// both run the exact same per-row code.
fn ell_dispatch(w: usize, cols: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]) {
    match w {
        1 => ell_block::<1>(cols, vals, x, y),
        2 => ell_block::<2>(cols, vals, x, y),
        3 => ell_block::<3>(cols, vals, x, y),
        4 => ell_block::<4>(cols, vals, x, y),
        5 => ell_block::<5>(cols, vals, x, y),
        6 => ell_block::<6>(cols, vals, x, y),
        7 => ell_block::<7>(cols, vals, x, y),
        8 => ell_block::<8>(cols, vals, x, y),
        _ => ell_block_dyn(w, cols, vals, x, y),
    }
}

impl EllMatrix {
    /// Convert a CSR matrix to padded fixed-width layout.
    pub fn from_csr(a: &Csr) -> Self {
        let rows = a.rows();
        let width = (0..rows)
            .map(|r| a.pattern().row_range(r).len())
            .max()
            .unwrap_or(0);
        let mut col_idx = vec![0u32; rows * width];
        let mut values = vec![0.0_f64; rows * width];
        for r in 0..rows {
            let range = a.pattern().row_range(r);
            let base = r * width;
            for (j, slot) in range.enumerate() {
                col_idx[base + j] = a.pattern().col_idx[slot];
                values[base + j] = a.values()[slot];
            }
        }
        Self {
            rows,
            cols: a.cols(),
            width,
            col_idx,
            values,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Padded row width (widest source row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored slots including padding.
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`, bit-identical to [`Csr::gather_into`] on the source
    /// matrix.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn gather_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gather dimension mismatch");
        assert_eq!(y.len(), self.rows, "gather output dimension mismatch");
        if self.width == 0 {
            y.fill(0.0);
            return;
        }
        ell_dispatch(self.width, &self.col_idx, &self.values, x, y);
    }

    /// Parallel `y = A x`, bit-identical to [`EllMatrix::gather_into`] for
    /// every worker count: rows are split over the fixed 64-row chunk grid
    /// (never a function of thread count) and each chunk runs the same
    /// fixed-order per-row kernel, so no floating-point reduction crosses a
    /// scheduling boundary.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn par_gather_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gather dimension mismatch");
        assert_eq!(y.len(), self.rows, "gather output dimension mismatch");
        let w = self.width;
        if w == 0 {
            y.fill(0.0);
            return;
        }
        let chunks: Vec<(usize, &mut [f64])> = y.chunks_mut(GATHER_CHUNK).enumerate().collect();
        let done: Vec<()> = chunks
            .into_par_iter()
            .map(|(ci, rows)| {
                let base = ci * GATHER_CHUNK * w;
                let len = rows.len() * w;
                ell_dispatch(
                    w,
                    &self.col_idx[base..base + len],
                    &self.values[base..base + len],
                    x,
                    rows,
                );
            })
            .collect();
        drop(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(2, 0, 3.0);
        t.push(2, 1, 4.0);
        t.build()
    }

    #[test]
    fn build_and_get() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 1), 4.0);
    }

    #[test]
    fn duplicates_merge() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.5);
        t.push(0, 1, 2.5);
        t.push(1, 0, -1.0);
        let a = t.build();
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn unsorted_input_ok() {
        let mut t = Triplets::new(3, 3);
        t.push(2, 2, 9.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 5.0);
        t.push(0, 0, 7.0);
        let a = t.build();
        assert_eq!(a.get(0, 0), 7.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(2, 2), 9.0);
    }

    #[test]
    fn zero_values_dropped() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 0.0);
        let a = t.build();
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let a = sample();
        let x = [1.0, -2.0, 0.5];
        let mut y1 = vec![0.0; 3];
        a.vecmat_into(&x, &mut y1);
        let y2 = a.transpose().matvec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a.to_dense(), att.to_dense());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Csr::identity(4);
        let x = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn row_sums_work() {
        let a = sample();
        assert_eq!(a.row_sums(), vec![3.0, 0.0, 7.0]);
    }

    #[test]
    fn empty_rows_handled() {
        let t = Triplets::new(3, 2);
        let a = t.build();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_push_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    /// A pseudo-random (but deterministic) sparse matrix with rows wide
    /// enough to exercise the unrolled lanes and the remainder path.
    fn wide_random(rows: usize, cols: usize) -> Csr {
        let mut t = Triplets::new(rows, cols);
        let mut s = 0x9e37_79b9_u64;
        for r in 0..rows {
            let width = 1 + (r % 9);
            for k in 0..width {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let c = (s >> 33) as usize % cols;
                let v = ((s >> 11) & 0xffff) as f64 / 65536.0 + 0.001;
                t.push(r, c, v);
                let _ = k;
            }
        }
        t.build()
    }

    #[test]
    fn gather_matches_matvec() {
        let a = wide_random(300, 300);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin()).collect();
        let dense = a.matvec(&x);
        let mut y = vec![0.0; 300];
        a.gather_into(&x, &mut y);
        for (g, d) in y.iter().zip(&dense) {
            assert!((g - d).abs() <= 1e-12 * (1.0 + d.abs()), "{g} vs {d}");
        }
    }

    #[test]
    fn par_gather_is_bit_identical_to_sequential() {
        // 300 rows span several 64-row chunks including a partial tail.
        let a = wide_random(300, 120);
        let x: Vec<f64> = (0..120).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut seq = vec![0.0; 300];
        let mut par = vec![1.0; 300];
        a.gather_into(&x, &mut seq);
        a.par_gather_into(&x, &mut par);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn ell_gather_is_bit_identical_to_csr_gather() {
        // Widths 1..=9 exercise every monomorphized kernel plus the
        // dynamic fallback; the empty row exercises full-width padding.
        let a = wide_random(300, 300);
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.rows(), 300);
        assert_eq!(e.cols(), 300);
        assert_eq!(e.width(), 9);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut csr = vec![0.0; 300];
        let mut ell = vec![1.0; 300];
        a.gather_into(&x, &mut csr);
        e.gather_into(&x, &mut ell);
        for (c, l) in csr.iter().zip(&ell) {
            assert_eq!(c.to_bits(), l.to_bits());
        }
    }

    #[test]
    fn ell_handles_empty_rows_and_empty_matrix() {
        let a = sample(); // row 1 is empty
        let e = EllMatrix::from_csr(&a);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![9.0; 3];
        e.gather_into(&x, &mut y);
        assert_eq!(y, vec![1.0 + 6.0, 0.0, 3.0 + 8.0]);

        let empty = Triplets::new(4, 3).build();
        let e = EllMatrix::from_csr(&empty);
        assert_eq!(e.width(), 0);
        let mut y = vec![5.0; 4];
        e.gather_into(&x, &mut y);
        assert_eq!(y, vec![0.0; 4]);
        e.par_gather_into(&x, &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn ell_par_gather_is_bit_identical_to_sequential() {
        let a = wide_random(300, 120);
        let e = EllMatrix::from_csr(&a);
        let x: Vec<f64> = (0..120).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut seq = vec![0.0; 300];
        let mut par = vec![1.0; 300];
        e.gather_into(&x, &mut seq);
        e.par_gather_into(&x, &mut par);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }
}
