//! Disjoint-set forest (union–find) with union by rank and path halving.
//!
//! Used by the MANET substrate to maintain connectivity components (mobile
//! groups) over the unit-disc graph at every mobility step.

/// Union–find over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for an empty structure.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        assert!(x < self.parent.len(), "union-find index {x} out of range");
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns `true` when a merge
    /// actually happened.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Map every element to a dense component id in `0..component_count()`,
    /// returned together with per-component sizes.
    pub fn component_labels(&mut self) -> (Vec<u32>, Vec<u32>) {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut sizes: Vec<u32> = Vec::new();
        for x in 0..n {
            let r = self.find(x);
            if label_of_root[r] == u32::MAX {
                label_of_root[r] = sizes.len() as u32;
                sizes.push(0);
            }
            labels[x] = label_of_root[r];
            sizes[label_of_root[r] as usize] += 1;
        }
        (labels, sizes)
    }

    /// Reset to all-singletons without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_count(), 3); // {0,1,2,3} {4} {5}
    }

    #[test]
    fn labels_are_dense_and_sizes_sum() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(1, 2);
        let (labels, sizes) = uf.component_labels();
        assert_eq!(labels.len(), 7);
        assert_eq!(sizes.iter().sum::<u32>(), 7);
        assert_eq!(sizes.len(), uf.component_count());
        // same set, same label
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[0], labels[5]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
        // labels dense in 0..count
        let max = *labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, sizes.len());
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset();
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        uf.find(2);
    }

    #[test]
    fn big_chain_components() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n - 1));
    }
}
